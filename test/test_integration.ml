(* Cross-library integration tests: full pipelines from policy text
   through simulation to audit, and cross-validation of independent
   implementations of the same semantics. *)

module Q = Temporal.Q

let q = Q.of_int
let prog = Sral.Parser.program

(* 1. Policy file -> world -> enforced run, end to end. *)
let test_policy_file_to_simulation () =
  let control =
    Coordinated.System.of_policy_text
      {|
user courier
role deliverer
assign courier deliverer
grant deliverer read:*@*
grant deliverer write:*@*
bind write:vault@s2 spatial "seq(read manifest @ s1, write vault @ s2)" scope performed
|}
  in
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2" ];
  (* compliant agent: reads the manifest first *)
  Naplet.World.spawn world ~id:"good" ~owner:"courier" ~roles:[ "deliverer" ]
    ~home:"s1" (prog "read manifest @ s1; write vault @ s2");
  (* rogue agent: goes straight for the vault *)
  Naplet.World.spawn world ~id:"rogue" ~owner:"courier" ~roles:[ "deliverer" ]
    ~home:"s1" (prog "write vault @ s2");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "grants" 2 metrics.Naplet.Metrics.granted;
  Alcotest.(check int) "denial" 1 metrics.Naplet.Metrics.denied;
  let log = Coordinated.System.log control in
  let rogue_entries = Coordinated.Audit_log.by_object log "rogue" in
  Alcotest.(check bool) "rogue denied" true
    (List.for_all
       (fun (e : Coordinated.Audit_log.entry) ->
         not (Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict))
       rogue_entries)

(* 2. The symbolic spatial checker agrees with running the program in
   the emulator: if Forall-check says every trace satisfies C, then the
   trace actually performed satisfies C. *)
let test_forall_check_sound_wrt_execution () =
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 25 do
    let program =
      Sral.Generate.loop_free_program ~resources:[ "a"; "b" ]
        ~servers:[ "s1"; "s2" ] ~size:6 rng
    in
    let formula =
      Srac.Formula.at_most 3
        (Srac.Selector.And
           (Srac.Selector.Resource "a", Srac.Selector.Server "s1"))
    in
    let forall_holds =
      Srac.Program_sat.check_bool ~modality:Srac.Program_sat.Forall program
        formula
    in
    if forall_holds then begin
      (* run it with no constraints and check the performed trace *)
      let policy = Rbac.Policy.create () in
      Rbac.Policy.add_user policy "u";
      Rbac.Policy.add_role policy "r";
      Rbac.Policy.assign_user policy "u" "r";
      Rbac.Policy.grant policy "r"
        (Rbac.Perm.make ~operation:"*" ~target:"*@*");
      let control = Coordinated.System.create policy in
      let world = Naplet.World.create control in
      List.iter
        (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
        [ "s1"; "s2" ];
      Naplet.World.spawn world ~id:"x" ~owner:"u" ~roles:[ "r" ] ~home:"s1"
        program;
      ignore (Naplet.World.run world);
      let m = Coordinated.System.monitor control ~object_id:"x" in
      let performed = Coordinated.Monitor.performed m in
      Alcotest.(check bool) "performed trace satisfies C" true
        (Srac.Trace_sat.sat ~proofs:Srac.Proof.always performed formula)
    end
  done

(* 3. The emulator's performed trace is always in the program's trace
   model (the machine implements Definition 3.2's semantics). *)
let test_execution_trace_in_trace_model () =
  let rng = Random.State.make [| 7 |] in
  for _ = 1 to 25 do
    let program =
      Sral.Generate.program ~allow_io:false ~resources:[ "a"; "b" ]
        ~servers:[ "s1"; "s2" ] ~size:8 rng
    in
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
    let control = Coordinated.System.create policy in
    let world = Naplet.World.create control in
    List.iter
      (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
      [ "s1"; "s2" ];
    Naplet.World.spawn world ~id:"x" ~owner:"u" ~roles:[ "r" ] ~home:"s1"
      program;
    let metrics = Naplet.World.run world in
    if metrics.Naplet.Metrics.completed_agents = 1 then begin
      let m = Coordinated.System.monitor control ~object_id:"x" in
      let performed = Coordinated.Monitor.performed m in
      let lang = Automata.Language.of_program program in
      Alcotest.(check bool)
        (Format.asprintf "trace %a in model" Sral.Trace.pp performed)
        true
        (Automata.Language.contains lang performed)
    end
  done

(* 4. Temporal budget burns with simulated time across migrations. *)
let test_budget_spans_migrations () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "u";
  Rbac.Policy.add_role policy "r";
  Rbac.Policy.assign_user policy "u" "r";
  Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
  let control = Coordinated.System.create policy in
  Coordinated.System.add_binding control
    (Coordinated.Perm_binding.make ~dur:(q 8)
       ~scheme:Temporal.Validity.Whole_journey
       (Rbac.Perm.make ~operation:"read" ~target:"*@*"));
  let world = Naplet.World.create control in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s1"; "s2" ];
  (* access at s1 (t~0), migrate (5), access at s2 (t~5 ok, budget spent
     while migrating), then two more pushing past 8 *)
  Naplet.World.spawn world ~id:"x" ~owner:"u" ~roles:[ "r" ] ~home:"s1"
    (prog "read a @ s1; read b @ s2; read c @ s2; read d @ s2; read e @ s2");
  let metrics = Naplet.World.run world in
  Alcotest.(check bool) "some granted" true (metrics.Naplet.Metrics.granted >= 2);
  Alcotest.(check bool) "some denied" true (metrics.Naplet.Metrics.denied >= 1)

(* 5. Theorem 3.1 through the whole stack: regex -> program -> emulated
   execution -> trace matches the regex. *)
let test_thm31_through_emulation () =
  let accesses =
    [ Sral.Access.read "a" ~at:"s1"; Sral.Access.read "b" ~at:"s1" ]
  in
  let table = Automata.Symbol.of_accesses accesses in
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 15 do
    let re =
      Automata.Regex.generate ~symbols:(Automata.Symbol.alphabet table)
        ~size:6 rng
    in
    let program = Automata.To_program.program ~table re in
    (* give loop conditions a bounded valuation so the run terminates:
       replace free condition variables with false (loops exit, ifs take
       the else branch) — the resulting trace must still match the regex
       only if nonempty-trace paths chosen; instead we check membership
       in the *language* of the program, which equals that of re *)
    let env_prog =
      List.fold_left
        (fun p v -> Sral.Ast.Seq (Sral.Ast.Assign (v, Sral.Expr.Bool false), p))
        program
        (Sral.Program.free_vars program)
    in
    let policy = Rbac.Policy.create () in
    Rbac.Policy.add_user policy "u";
    Rbac.Policy.add_role policy "r";
    Rbac.Policy.assign_user policy "u" "r";
    Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
    let control = Coordinated.System.create policy in
    let world = Naplet.World.create control in
    Naplet.World.add_server world (Naplet.Server.create "s1");
    Naplet.World.spawn world ~id:"x" ~owner:"u" ~roles:[ "r" ] ~home:"s1"
      env_prog;
    let metrics = Naplet.World.run world in
    Alcotest.(check int) "completed" 1 metrics.Naplet.Metrics.completed_agents;
    let m = Coordinated.System.monitor control ~object_id:"x" in
    let performed = Coordinated.Monitor.performed m in
    let word =
      List.filter_map (Automata.Symbol.find table) performed
    in
    Alcotest.(check bool)
      (Format.asprintf "performed %a matches regex" Sral.Trace.pp performed)
      true
      (Automata.Regex.matches re word)
  done

(* 6. DC-based and step-function-based temporal verdicts agree across a
   whole simulated journey. *)
let test_dc_stepfn_agreement_in_sim () =
  let binding =
    Coordinated.Perm_binding.make ~dur:(q 4)
      ~scheme:Temporal.Validity.Whole_journey
      (Rbac.Perm.make ~operation:"read" ~target:"*@*")
  in
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "u";
  Rbac.Policy.add_role policy "r";
  Rbac.Policy.assign_user policy "u" "r";
  Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
  let control = Coordinated.System.create ~bindings:[ binding ] policy in
  let world = Naplet.World.create control in
  Naplet.World.add_server world (Naplet.Server.create "s1");
  Naplet.World.spawn world ~id:"x" ~owner:"u" ~roles:[ "r" ] ~home:"s1"
    (prog "read a @ s1; read a @ s1; read a @ s1; read a @ s1; read a @ s1; read a @ s1");
  ignore (Naplet.World.run world);
  let m = Coordinated.System.monitor control ~object_id:"x" in
  let log = Coordinated.System.log control in
  List.iter
    (fun (e : Coordinated.Audit_log.entry) ->
      let dc =
        Coordinated.Decision.validity_dc_check ~monitor:m ~binding
          ~time:e.Coordinated.Audit_log.time
      in
      match e.Coordinated.Audit_log.verdict with
      | Coordinated.Decision.Granted ->
          Alcotest.(check bool) "granted => dc valid" true dc
      | Coordinated.Decision.Denied (Coordinated.Decision.Temporal_expired _) ->
          Alcotest.(check bool) "expired => dc invalid" false dc
      | Coordinated.Decision.Denied _ -> ())
    (Coordinated.Audit_log.entries log)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "policy file to simulation" `Quick
            test_policy_file_to_simulation;
          Alcotest.test_case "forall-check sound wrt execution" `Quick
            test_forall_check_sound_wrt_execution;
          Alcotest.test_case "execution trace in trace model" `Quick
            test_execution_trace_in_trace_model;
          Alcotest.test_case "budget spans migrations" `Quick
            test_budget_spans_migrations;
          Alcotest.test_case "theorem 3.1 through emulation" `Quick
            test_thm31_through_emulation;
          Alcotest.test_case "dc/step-fn agreement in sim" `Quick
            test_dc_stepfn_agreement_in_sim;
        ] );
    ]
