(* Shared seeded generators for the randomized suites.

   Every randomized test draws its cases through this module so that
   (a) "a random coalition" means the same thing in the fuzz,
   fault-chaos, analysis-oracle and parallel-conformance suites, and
   (b) the whole seed space can be shifted from the environment:

     STACC_TEST_SEED=<n>  offsets every effective seed by <n>.

   [each_seed] prints the effective seed (and the command to replay it)
   whenever a case fails, so any failure from a shifted run is
   reproducible with one environment variable. *)

let offset =
  match Sys.getenv_opt "STACC_TEST_SEED" with
  | None | Some "" -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          failwith (Printf.sprintf "STACC_TEST_SEED must be an integer: %S" s))

let each_seed ?(salt = 0) ~count f =
  for i = 0 to count - 1 do
    let seed = i + offset in
    try f ~seed (Random.State.make [| salt; seed |])
    with e ->
      Printf.eprintf
        "\n\
         [gen] randomized case failed at effective seed %d (salt %d)\n\
         [gen] reproduce with: STACC_TEST_SEED=%d dune runtest\n\
         %!"
        seed salt seed;
      raise e
  done

(* ------------------------------------------------------------------ *)
(* Coalitions — one generator, shared with the engine and the bench    *)
(* ------------------------------------------------------------------ *)

let pick = Parallel.Workload.pick
let coalition = Parallel.Workload.scenario
let coalitions = Parallel.Workload.coalitions
let bindings rng = Parallel.Workload.bindings ~resources:[ "r1"; "r2"; "r3" ] rng

(* The fuzz suites' random RBAC policy, materialized from the same
   grant/assignment distributions the coalition generator uses. *)
let policy ?(resources = [ "r1"; "r2"; "r3" ]) ?(servers = [ "s1"; "s2" ]) rng =
  let p = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user p) Parallel.Workload.users;
  List.iter (Rbac.Policy.add_role p) Parallel.Workload.roles;
  List.iter
    (fun (role, perm) -> Rbac.Policy.grant p role perm)
    (Parallel.Workload.grants ~resources ~servers rng);
  List.iter
    (fun (u, r) -> Rbac.Policy.assign_user p u r)
    (Parallel.Workload.assignments rng);
  p

(* ------------------------------------------------------------------ *)
(* Analysis-oracle universe — worlds, formulas and bindings            *)
(* ------------------------------------------------------------------ *)

module A = Sral.Access
module F = Srac.Formula
module PB = Coordinated.Perm_binding

let oracle_servers = [ "s1"; "s2"; "s3" ]

let oracle_pool =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun r ->
          [
            A.make ~op:A.Read ~resource:r ~server:s;
            A.make ~op:A.Write ~resource:r ~server:s;
          ])
        [ "r1"; "r2" ])
    oracle_servers

(* an access no world of ours can perform — feeds the unexercisable
   findings *)
let foreign = A.read "vault" ~at:"s9"

let universe rng =
  let n = 3 + Random.State.int rng 2 in
  let tagged = List.map (fun a -> (Random.State.bits rng, a)) oracle_pool in
  let shuffled = List.sort compare tagged |> List.map snd in
  List.sort_uniq A.compare (List.filteri (fun i _ -> i < n) shuffled)

let world rng universe =
  let links =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if (not (String.equal a b)) && Random.State.bool rng then Some (a, b)
            else None)
          oracle_servers)
      oracle_servers
  in
  let entries = List.filter (fun _ -> Random.State.bool rng) oracle_servers in
  let entries = if entries = [] then [ pick rng oracle_servers ] else entries in
  Analysis.World.make ~links ~entries ~servers:oracle_servers ~universe ()

let oracle_access rng universe =
  if Random.State.int rng 8 = 0 then foreign else pick rng universe

let selector rng universe =
  match Random.State.int rng 5 with
  | 0 -> Srac.Selector.Any
  | 1 -> Srac.Selector.Op (if Random.State.bool rng then A.Read else A.Write)
  | 2 -> Srac.Selector.Resource (pick rng [ "r1"; "r2" ])
  | 3 -> Srac.Selector.Server (pick rng ("s9" :: oracle_servers))
  | _ -> Srac.Selector.Exactly (oracle_access rng universe)

let rec formula rng universe depth =
  if depth = 0 || Random.State.int rng 3 = 0 then
    match Random.State.int rng 3 with
    | 0 -> F.Atom (oracle_access rng universe)
    | 1 -> F.Ordered (oracle_access rng universe, oracle_access rng universe)
    | _ ->
        let lo = Random.State.int rng 3 in
        let hi =
          if Random.State.bool rng then None else Some (Random.State.int rng 3)
        in
        F.Card { lo; hi; sel = selector rng universe }
  else
    match Random.State.int rng 3 with
    | 0 ->
        F.And (formula rng universe (depth - 1), formula rng universe (depth - 1))
    | 1 ->
        F.Or (formula rng universe (depth - 1), formula rng universe (depth - 1))
    | _ -> F.Not (formula rng universe (depth - 1))

let analysis_binding rng universe =
  let concrete () =
    let a = pick rng universe in
    (A.operation_name a.A.op, a.A.resource ^ "@" ^ a.A.server)
  in
  let operation, target =
    match Random.State.int rng 4 with
    | 0 -> ("*", "*@*")
    | 1 -> concrete ()
    | 2 -> ((if Random.State.bool rng then "read" else "write"), "*@*")
    | _ ->
        let a = pick rng universe in
        (A.operation_name a.A.op, "*@" ^ a.A.server)
  in
  let spatial =
    if Random.State.int rng 6 = 0 then None else Some (formula rng universe 2)
  in
  let spatial_scope =
    match Random.State.int rng 4 with
    | 0 | 1 -> PB.Performed
    | 2 -> PB.Both
    | _ -> PB.Program
  in
  let spatial_modality =
    if Random.State.int rng 4 = 0 then Srac.Program_sat.Forall
    else Srac.Program_sat.Exists
  in
  let dur =
    match Random.State.int rng 3 with
    | 0 -> None
    | 1 -> Some (Temporal.Q.of_int (1 + Random.State.int rng 3))
    | _ -> Some (Temporal.Q.make 3 2)
  in
  let scheme =
    if Random.State.int rng 4 = 0 then Temporal.Validity.Per_server
    else Temporal.Validity.Whole_journey
  in
  PB.make ?spatial ~spatial_modality ~spatial_scope ?dur ~scheme
    (Rbac.Perm.make ~operation ~target)
