(* Shared seeded generators for the randomized suites.

   Every randomized test draws its cases through this module so that
   (a) "a random coalition" means the same thing in the fuzz,
   fault-chaos, analysis-oracle and parallel-conformance suites, and
   (b) the whole seed space can be shifted from the environment:

     STACC_TEST_SEED=<n>  offsets every effective seed by <n>.

   [each_seed] prints the effective seed (and the command to replay it)
   whenever a case fails, so any failure from a shifted run is
   reproducible with one environment variable. *)

let offset =
  match Sys.getenv_opt "STACC_TEST_SEED" with
  | None | Some "" -> 0
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          failwith (Printf.sprintf "STACC_TEST_SEED must be an integer: %S" s))

(* The environment prefix that replays the current run exactly.  Any
   seed-space shift *and* any shard-count override must both appear in
   printed repro commands: a parallel-conformance failure under
   STACC_SHARDS=8 does not necessarily reproduce under the default
   "2,4". *)
let repro_env seed =
  let shards =
    match Sys.getenv_opt "STACC_SHARDS" with
    | None | Some "" -> ""
    | Some s -> Printf.sprintf " STACC_SHARDS=%s" s
  in
  Printf.sprintf "STACC_TEST_SEED=%d%s" seed shards

let each_seed ?(salt = 0) ~count f =
  for i = 0 to count - 1 do
    let seed = i + offset in
    try f ~seed (Random.State.make [| salt; seed |])
    with e ->
      Printf.eprintf
        "\n\
         [gen] randomized case failed at effective seed %d (salt %d)\n\
         [gen] reproduce with: %s dune runtest\n\
         %!"
        seed salt (repro_env seed);
      raise e
  done

(* ------------------------------------------------------------------ *)
(* Greedy counterexample shrinking                                     *)
(*                                                                     *)
(* [shrink ~fails ~candidates x] walks to a local minimum: as long as  *)
(* some one-step-smaller candidate still fails, descend into it.       *)
(* [fails] must be total — wrap raising properties with [reproduces].  *)
(* Everything is deterministic, so the minimized counterexample is as  *)
(* reproducible as the seed that found the original.                   *)
(* ------------------------------------------------------------------ *)

let reproduces f x =
  match f x with () -> false | exception _ -> true

let rec shrink ~fails ~candidates x =
  match List.find_opt fails (candidates x) with
  | None -> x
  | Some smaller -> shrink ~fails ~candidates smaller

let drop_one xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

let shrink_list ~fails xs = shrink ~fails ~candidates:drop_one xs

(* Coalition shrinking: drop whole objects (with their events), then
   single events, then bindings, then grants — each pass a greedy
   fixpoint, re-checking the failing property on the shrunk scenario. *)
let shrink_coalition ~fails (sc : Parallel.Scenario.t) =
  let module S = Parallel.Scenario in
  let without_object sc =
    List.map
      (fun (o : S.obj) ->
        {
          sc with
          S.objects = List.filter (fun (o' : S.obj) -> o' != o) sc.S.objects;
          S.events =
            List.filter
              (fun ev ->
                match S.subject ev with
                | Some id -> not (String.equal id o.S.id)
                | None -> true)
              sc.S.events;
        })
      sc.S.objects
  in
  let field get set sc =
    List.map (fun smaller -> set sc smaller) (drop_one (get sc))
  in
  let passes =
    [
      without_object;
      field (fun sc -> sc.S.events) (fun sc evs -> { sc with S.events = evs });
      field (fun sc -> sc.S.bindings) (fun sc bs -> { sc with S.bindings = bs });
      field (fun sc -> sc.S.grants) (fun sc gs -> { sc with S.grants = gs });
    ]
  in
  List.fold_left
    (fun sc candidates -> shrink ~fails ~candidates sc)
    sc passes

(* Workflow shrinking: drop duties, tasks (fixing up DAG edges and duty
   memberships), performers, bindings, grants.  Each candidate is
   re-validated through [Workflow_family.make]; candidates that no
   longer form a well-formed workflow are simply not offered. *)
let shrink_workflow ~fails (wf : Scenarios.Workflow_family.t) =
  let module W = Scenarios.Workflow_family in
  let rebuild ?grants ?assignments ?duties ?performers ?tasks (wf : W.t) =
    let d v = function Some x -> x | None -> v in
    match
      W.make ~users:wf.W.users ~roles:wf.W.roles
        ~grants:(d wf.W.grants grants)
        ~assignments:(d wf.W.assignments assignments)
        ~bindings:wf.W.bindings
        ~duties:(d wf.W.duties duties)
        ?plan:wf.W.plan
        ~performers:(d wf.W.performers performers)
        ~tasks:(d wf.W.tasks tasks)
        ()
    with
    | wf -> Some wf
    | exception Invalid_argument _ -> None
  in
  let without_task (wf : W.t) =
    List.filter_map
      (fun (victim : W.task) ->
        let tasks =
          List.filter_map
            (fun (tk : W.task) ->
              if String.equal tk.W.name victim.W.name then None
              else
                Some
                  {
                    tk with
                    W.after =
                      List.filter
                        (fun a -> not (String.equal a victim.W.name))
                        tk.W.after;
                  })
            wf.W.tasks
        in
        let duties =
          List.filter_map
            (fun duty ->
              let keep ns =
                List.filter (fun n -> not (String.equal n victim.W.name)) ns
              in
              match duty with
              | W.Separation ns ->
                  let ns = keep ns in
                  if List.length ns >= 2 then Some (W.Separation ns) else None
              | W.Binding ns ->
                  let ns = keep ns in
                  if List.length ns >= 2 then Some (W.Binding ns) else None)
            wf.W.duties
        in
        rebuild ~tasks ~duties wf)
      wf.W.tasks
  in
  let on_list get put (wf : W.t) =
    List.filter_map (fun smaller -> put wf smaller) (drop_one (get wf))
  in
  let passes =
    [
      on_list (fun wf -> wf.W.duties) (fun wf ds -> rebuild ~duties:ds wf);
      without_task;
      on_list
        (fun wf -> wf.W.performers)
        (fun wf ps -> rebuild ~performers:ps wf);
      on_list (fun wf -> wf.W.grants) (fun wf gs -> rebuild ~grants:gs wf);
      on_list
        (fun wf -> wf.W.assignments)
        (fun wf asgs -> rebuild ~assignments:asgs wf);
    ]
  in
  List.fold_left
    (fun wf candidates -> shrink ~fails ~candidates wf)
    wf passes

(* Standard failure protocol for randomized suites: print seed + repro
   command (each_seed already does), then a *minimized* counterexample
   so the defect is readable without replaying hundreds of cases. *)
let report_minimized ~seed ~what pp x =
  Printf.eprintf
    "[gen] minimized %s (effective seed %d, %s):\n%s\n%!" what seed
    (repro_env seed)
    (Format.asprintf "%a" pp x)

(* ------------------------------------------------------------------ *)
(* Coalitions — one generator, shared with the engine and the bench    *)
(* ------------------------------------------------------------------ *)

let pick = Parallel.Workload.pick
let coalition = Parallel.Workload.scenario
let coalitions = Parallel.Workload.coalitions
let bindings rng = Parallel.Workload.bindings ~resources:[ "r1"; "r2"; "r3" ] rng

(* The temporal-workflow scenario family, same seeding discipline as
   [coalitions]: workflow [i] of a batch depends only on (salt, seed,
   i). *)
let workflow = Scenarios.Workflow_family.generate
let workflows = Scenarios.Workflow_family.workflows

(* The fuzz suites' random RBAC policy, materialized from the same
   grant/assignment distributions the coalition generator uses. *)
let policy ?(resources = [ "r1"; "r2"; "r3" ]) ?(servers = [ "s1"; "s2" ]) rng =
  let p = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user p) Parallel.Workload.users;
  List.iter (Rbac.Policy.add_role p) Parallel.Workload.roles;
  List.iter
    (fun (role, perm) -> Rbac.Policy.grant p role perm)
    (Parallel.Workload.grants ~resources ~servers rng);
  List.iter
    (fun (u, r) -> Rbac.Policy.assign_user p u r)
    (Parallel.Workload.assignments rng);
  p

(* ------------------------------------------------------------------ *)
(* Analysis-oracle universe — worlds, formulas and bindings            *)
(* ------------------------------------------------------------------ *)

module A = Sral.Access
module F = Srac.Formula
module PB = Coordinated.Perm_binding

let oracle_servers = [ "s1"; "s2"; "s3" ]

let oracle_pool =
  List.concat_map
    (fun s ->
      List.concat_map
        (fun r ->
          [
            A.make ~op:A.Read ~resource:r ~server:s;
            A.make ~op:A.Write ~resource:r ~server:s;
          ])
        [ "r1"; "r2" ])
    oracle_servers

(* an access no world of ours can perform — feeds the unexercisable
   findings *)
let foreign = A.read "vault" ~at:"s9"

let universe rng =
  let n = 3 + Random.State.int rng 2 in
  let tagged = List.map (fun a -> (Random.State.bits rng, a)) oracle_pool in
  let shuffled = List.sort compare tagged |> List.map snd in
  List.sort_uniq A.compare (List.filteri (fun i _ -> i < n) shuffled)

let world rng universe =
  let links =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if (not (String.equal a b)) && Random.State.bool rng then Some (a, b)
            else None)
          oracle_servers)
      oracle_servers
  in
  let entries = List.filter (fun _ -> Random.State.bool rng) oracle_servers in
  let entries = if entries = [] then [ pick rng oracle_servers ] else entries in
  Analysis.World.make ~links ~entries ~servers:oracle_servers ~universe ()

let oracle_access rng universe =
  if Random.State.int rng 8 = 0 then foreign else pick rng universe

let selector rng universe =
  match Random.State.int rng 5 with
  | 0 -> Srac.Selector.Any
  | 1 -> Srac.Selector.Op (if Random.State.bool rng then A.Read else A.Write)
  | 2 -> Srac.Selector.Resource (pick rng [ "r1"; "r2" ])
  | 3 -> Srac.Selector.Server (pick rng ("s9" :: oracle_servers))
  | _ -> Srac.Selector.Exactly (oracle_access rng universe)

(* One depth-bounded boolean skeleton over caller-supplied leaves — the
   shared shape of every random SRAC constraint in the suites (the
   analysis-oracle worlds, the simplify/derivative properties and the
   lazy-DFA fuzz all draw through it, so "a random constraint" means
   the same thing everywhere). *)
let rec formula_over ~leaf rng depth =
  if depth = 0 || Random.State.int rng 3 = 0 then leaf rng
  else
    match Random.State.int rng 3 with
    | 0 ->
        F.And
          (formula_over ~leaf rng (depth - 1), formula_over ~leaf rng (depth - 1))
    | 1 ->
        F.Or
          (formula_over ~leaf rng (depth - 1), formula_over ~leaf rng (depth - 1))
    | _ -> F.Not (formula_over ~leaf rng (depth - 1))

let formula rng universe depth =
  let leaf rng =
    match Random.State.int rng 3 with
    | 0 -> F.Atom (oracle_access rng universe)
    | 1 -> F.Ordered (oracle_access rng universe, oracle_access rng universe)
    | _ ->
        let lo = Random.State.int rng 3 in
        let hi =
          if Random.State.bool rng then None else Some (Random.State.int rng 3)
        in
        F.Card { lo; hi; sel = selector rng universe }
  in
  formula_over ~leaf rng depth

(* Random constraint over a concrete access pool (the srac suites'
   universe): atoms, orderings and cardinalities whose selectors are
   derived from the pool itself, plus the constants.  Replaces the
   ad-hoc generators the srac and lazy-DFA suites each used to carry. *)
let srac_selector rng accesses =
  match Random.State.int rng 5 with
  | 0 -> Srac.Selector.Any
  | 1 -> Srac.Selector.Op (if Random.State.bool rng then A.Read else A.Write)
  | 2 -> Srac.Selector.Resource (pick rng accesses).A.resource
  | 3 -> Srac.Selector.Server (pick rng accesses).A.server
  | _ -> Srac.Selector.Exactly (pick rng accesses)

let srac_formula ?(depth = 2) ~accesses rng =
  let leaf rng =
    match Random.State.int rng 4 with
    | 0 -> F.Atom (pick rng accesses)
    | 1 -> F.Ordered (pick rng accesses, pick rng accesses)
    | 2 ->
        let lo = Random.State.int rng 2 in
        F.Card
          {
            lo;
            hi =
              (if Random.State.bool rng then Some (lo + Random.State.int rng 3)
               else None);
            sel = srac_selector rng accesses;
          }
    | _ -> (if Random.State.bool rng then F.True else F.False)
  in
  formula_over ~leaf rng depth

(* Immediate-subterm candidates: with {!shrink} this walks a failing
   formula down to a minimal failing subformula. *)
let formula_subterms = function
  | F.And (a, b) | F.Or (a, b) -> [ a; b ]
  | F.Not a -> [ a ]
  | F.True | F.False | F.Atom _ | F.Ordered _ | F.Card _ -> []

let analysis_binding rng universe =
  let concrete () =
    let a = pick rng universe in
    (A.operation_name a.A.op, a.A.resource ^ "@" ^ a.A.server)
  in
  let operation, target =
    match Random.State.int rng 4 with
    | 0 -> ("*", "*@*")
    | 1 -> concrete ()
    | 2 -> ((if Random.State.bool rng then "read" else "write"), "*@*")
    | _ ->
        let a = pick rng universe in
        (A.operation_name a.A.op, "*@" ^ a.A.server)
  in
  let spatial =
    if Random.State.int rng 6 = 0 then None else Some (formula rng universe 2)
  in
  let spatial_scope =
    match Random.State.int rng 4 with
    | 0 | 1 -> PB.Performed
    | 2 -> PB.Both
    | _ -> PB.Program
  in
  let spatial_modality =
    if Random.State.int rng 4 = 0 then Srac.Program_sat.Forall
    else Srac.Program_sat.Exists
  in
  let dur =
    match Random.State.int rng 3 with
    | 0 -> None
    | 1 -> Some (Temporal.Q.of_int (1 + Random.State.int rng 3))
    | _ -> Some (Temporal.Q.make 3 2)
  in
  let scheme =
    if Random.State.int rng 4 = 0 then Temporal.Validity.Per_server
    else Temporal.Validity.Whole_journey
  in
  PB.make ?spatial ~spatial_modality ~spatial_scope ?dur ~scheme
    (Rbac.Perm.make ~operation ~target)

(* A full random Policy_lang.t — RBAC policy plus hierarchy, SoD
   constraints and bindings — for the render/parse fixed-point
   property.  SSD constraints that an already-generated assignment
   would violate retroactively are simply skipped (the real admin API
   rejects them too). *)
let policy_lang rng =
  let u = universe rng in
  let p = policy rng in
  let roles = Parallel.Workload.roles in
  List.iteri
    (fun i senior ->
      List.iteri
        (fun j junior ->
          if i < j && Random.State.int rng 5 = 0 then
            match Rbac.Policy.add_inheritance p ~senior ~junior with
            | () -> ()
            | exception Rbac.Hierarchy.Cycle _ -> ())
        roles)
    roles;
  for i = 0 to Random.State.int rng 3 - 1 do
    let r1 = pick rng roles and r2 = pick rng roles in
    if not (String.equal r1 r2) then begin
      let c =
        Rbac.Sod.make
          ~name:(Printf.sprintf "c%d" i)
          ~roles:[ r1; r2 ] ~max_roles:1
      in
      if Random.State.bool rng then (
        try Rbac.Policy.add_ssd p c with Invalid_argument _ -> ())
      else Rbac.Policy.add_dsd p c
    end
  done;
  let bindings =
    List.init (Random.State.int rng 4) (fun _ -> analysis_binding rng u)
  in
  { Coordinated.Policy_lang.policy = p; bindings }
