(* Differential conformance harness for the sharded decision engine:
   the parallel engine must be *observationally identical* to the
   sequential interpreter — same rendered verdicts, same lifetime audit
   counters, same rendered audit log, byte-for-byte the same exported
   trace — over hundreds of generated coalitions, under both sharding
   strategies, with and without fault plans.

   Shard counts honour STACC_SHARDS (comma-separated, default "2,4");
   CI runs the suite under 2 and 8.  Seeds honour STACC_TEST_SEED via
   Gen. *)

module P = Parallel
module Scenario = Parallel.Scenario
module Engine = Parallel.Engine

let shard_counts =
  match Sys.getenv_opt "STACC_SHARDS" with
  | None | Some "" -> [ 2; 4 ]
  | Some s -> (
      match List.filter_map int_of_string_opt (String.split_on_char ',' s) with
      | [] -> failwith (Printf.sprintf "STACC_SHARDS unparsable: %S" s)
      | counts -> counts)

(* The conformance corpus: 300+ coalitions in three families —
   team-heavy (cross-object coupling stresses the team-closed
   partition), fault-planned (crash windows must replay fail-closed and
   identically), and team-free with a larger population (every object
   its own component — the embarrassingly-parallel shape). *)
let corpus =
  let module W = Scenarios.Workflow_family in
  (* A workflow as coalition data: round-robin the performers over the
     tasks — conformance does not care whether the run completes, only
     that sharded and sequential interpretations agree on it. *)
  let wf_family fam salt =
    Array.map
      (fun (wf : W.t) ->
        let ids = Array.of_list (List.map (fun (p : W.performer) -> p.W.id) wf.W.performers) in
        W.to_scenario wf
          (List.mapi
             (fun k (tk : W.task) ->
               (tk.W.name, ids.(k mod Array.length ids)))
             wf.W.tasks))
      (Gen.workflows fam ~salt ~count:20 Gen.offset)
  in
  Array.concat
    [
      Gen.coalitions ~salt:6060 ~count:150 Gen.offset;
      Gen.coalitions ~salt:6061 ~faults:true ~count:100 Gen.offset;
      Gen.coalitions ~salt:6062 ~teams:false ~objects:6 ~events:30 ~count:50
        Gen.offset;
      (* workflow-derived coalitions: straight-line scripts, canonical
         schedules, optional fault plans — a qualitatively different
         event shape (arrive/check lockstep) for the sharded engine *)
      wf_family W.Satisfiable 6065;
      wf_family W.Adversarial 6066;
    ]

let () = assert (Array.length corpus >= 300)

let check_report shards (r : Engine.report) =
  match r.Engine.divergences with
  | [] -> ()
  | (i, d) :: _ ->
      Alcotest.failf
        "%d divergence(s); first: coalition %d diverged on %s; reproduce \
         with: STACC_TEST_SEED=%d STACC_SHARDS=%d dune exec \
         test/test_parallel.exe"
        (List.length r.Engine.divergences)
        i d Gen.offset shards

(* 1. The headline property: both sharding strategies conform over the
   whole corpus, at every configured shard count. *)
let test_conformance () =
  List.iter
    (fun shards ->
      let report = Engine.verify ~shards corpus in
      Alcotest.(check int)
        (Printf.sprintf "corpus size (shards=%d)" shards)
        (Array.length corpus) report.Engine.coalitions;
      Alcotest.(check bool)
        (Printf.sprintf "corpus exercises checks (shards=%d)" shards)
        true
        (report.Engine.checks > 1000);
      check_report shards report)
    shard_counts

(* 2. Naive mode too: sharding must be orthogonal to the decision-path
   strategy, not an artifact of the indexed cache. *)
let test_conformance_naive_mode () =
  let slice = Array.sub corpus 0 60 in
  List.iter
    (fun shards ->
      check_report shards
        (Engine.verify ~mode:Coordinated.System.Naive ~shards slice))
    shard_counts

(* 3. One shard is literally the sequential engine — and on OCaml 4.14
   (Backend.domains = false) every shard count degrades to this, so
   this is the single-shard-fallback conformance test. *)
let test_single_shard_is_sequential () =
  let expected = Engine.sequential corpus in
  let actual = Engine.sharded ~shards:1 corpus in
  Array.iteri
    (fun i e ->
      match Engine.diff ~expected:e ~actual:actual.(i) with
      | None -> ()
      | Some d ->
          Alcotest.failf "STACC_TEST_SEED=%d coalition %d: shards=1 %s"
            Gen.offset i d)
    expected;
  Array.iteri
    (fun i e ->
      match
        Engine.diff ~expected:e ~actual:(Engine.object_sharded ~shards:1 corpus.(i))
      with
      | None -> ()
      | Some d ->
          Alcotest.failf
            "STACC_TEST_SEED=%d coalition %d: object-sharded shards=1 %s"
            Gen.offset i d)
    expected

(* 4. Sharded runs are deterministic: two executions export
   byte-identical traces (domains introduce scheduling nondeterminism;
   the merge must erase it). *)
let test_sharded_determinism () =
  let shards = List.fold_left max 2 shard_counts in
  let bytes () =
    let outcomes = Engine.sharded ~shards corpus in
    String.concat ""
      (Array.to_list
         (Array.map (fun o -> Obs.Export.to_string o.Scenario.trace) outcomes))
  in
  Alcotest.(check bool) "coalition-sharded bytes stable" true
    (String.equal (bytes ()) (bytes ()));
  let obytes () =
    Obs.Export.to_string (Engine.object_sharded ~shards corpus.(0)).Scenario.trace
  in
  Alcotest.(check bool) "object-sharded bytes stable" true
    (String.equal (obytes ()) (obytes ()))

(* 5. Partition soundness: objects that ever share a team land on the
   same shard; the assignment is deterministic and total. *)
let test_partition_team_closed () =
  Gen.each_seed ~salt:6063 ~count:100 (fun ~seed rng ->
      let sc = Gen.coalition rng in
      List.iter
        (fun shards ->
          let p = P.Partition.assign ~shards sc in
          (* total over declared objects *)
          List.iter
            (fun (o : Scenario.obj) -> ignore (P.Partition.shard_of p o.id))
            sc.Scenario.objects;
          (* team-closed: co-membership forces co-location *)
          let home = Hashtbl.create 8 in
          List.iter
            (function
              | Scenario.Join (id, team) -> (
                  let s = P.Partition.shard_of p id in
                  match Hashtbl.find_opt home team with
                  | None -> Hashtbl.add home team s
                  | Some s' ->
                      if s <> s' then
                        Alcotest.failf
                          "seed %d shards=%d: team %S split across shards %d \
                           and %d"
                          seed shards team s' s)
              | _ -> ())
            sc.Scenario.events;
          (* deterministic *)
          let p' = P.Partition.assign ~shards sc in
          List.iter
            (fun (o : Scenario.obj) ->
              Alcotest.(check int)
                (Printf.sprintf "seed %d: stable shard for %s" seed o.id)
                (P.Partition.shard_of p o.id)
                (P.Partition.shard_of p' o.id))
            sc.Scenario.objects)
        shard_counts;
      let p = P.Partition.assign ~shards:2 sc in
      Alcotest.check_raises
        (Printf.sprintf "seed %d: unknown object rejected" seed)
        (Invalid_argument "Partition.shard_of: unknown object \"ghost\"")
        (fun () -> ignore (P.Partition.shard_of p "ghost")))

(* 6. The merge is exactly a stable sort by step index. *)
let test_merge_by_index () =
  let ev t =
    Obs.Trace.Fault_injected
      {
        time = Temporal.Q.of_int t;
        agent = Printf.sprintf "a%d" t;
        fault = Obs.Trace.Server_unreachable;
        target = "s1";
      }
  in
  let shard0 = [ (0, [ ev 0 ]); (2, [ ev 2; ev 20 ]); (5, []) ] in
  let shard1 = [ (1, [ ev 1 ]); (3, []); (4, [ ev 4 ]) ] in
  Alcotest.(check bool) "shard slices are monotone" true
    (Obs.Merge.monotone_indices shard0 && Obs.Merge.monotone_indices shard1);
  Alcotest.(check bool) "non-monotone detected" false
    (Obs.Merge.monotone_indices [ (3, []); (3, []) ]);
  let merged = Obs.Merge.by_index [| shard0; shard1 |] in
  Alcotest.(check string) "interleaved into step order"
    (Obs.Export.to_string [ ev 0; ev 1; ev 2; ev 20; ev 4 ])
    (Obs.Export.to_string merged)

(* 7. Backend contract: results in task order; exceptions join all
   domains and re-raise the first (in task order). *)
let test_backend_contract () =
  let results =
    P.Backend.parallel (Array.init 9 (fun i () -> i * i))
  in
  Alcotest.(check (list int)) "task order"
    (List.init 9 (fun i -> i * i))
    (Array.to_list results);
  Alcotest.(check (list int)) "empty and singleton" [ 7 ]
    (Array.to_list (P.Backend.parallel [| (fun () -> 7) |]));
  Alcotest.(check int) "empty" 0
    (Array.length (P.Backend.parallel [||]));
  Alcotest.check_raises "first failure re-raised" (Failure "task-1")
    (fun () ->
      ignore
        (P.Backend.parallel
           [|
             (fun () -> ());
             (fun () -> failwith "task-1");
             (fun () -> failwith "task-2");
           |]))

(* 9. The big-coalition generator — the [stacc bench-parallel --big]
   workload and the ROADMAP's 10^4+-object shard sweeps: one
   2000-object coalition in team-closed blocks, replayed object-sharded
   at every configured shard count, must conform to the sequential
   interpreter observation for observation. *)
let test_big_coalition_conformance () =
  let rng = Random.State.make [| 1717; Gen.offset |] in
  let sc = Parallel.Workload.big_coalition ~objects:2_000 rng in
  let expected = (Engine.sequential [| sc |]).(0) in
  List.iter
    (fun shards ->
      match
        Engine.diff ~expected ~actual:(Engine.object_sharded ~shards sc)
      with
      | None -> ()
      | Some d ->
          Alcotest.failf "STACC_TEST_SEED=%d STACC_SHARDS=%d big coalition: %s"
            Gen.offset shards d)
    shard_counts

(* 8. Batch entry points agree with one-at-a-time calls. *)
let test_batch_matches_single () =
  Gen.each_seed ~salt:6064 ~count:25 (fun ~seed rng ->
      let sc = Gen.coalition ~faults:false rng in
      let render v = Format.asprintf "%a" Coordinated.Decision.pp_verdict v in
      let replay () =
        let control = Scenario.system sc in
        let o = List.hd sc.Scenario.objects in
        let session =
          Coordinated.System.new_session control ~user:o.Scenario.owner
        in
        List.iter
          (fun r ->
            try Rbac.Session.activate session r with
            | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ ->
                ())
          o.Scenario.roles;
        Coordinated.System.arrive control ~object_id:o.Scenario.id ~server:"s1"
          ~time:(Temporal.Q.of_int 1);
        (control, session, o)
      in
      let accesses =
        List.filteri
          (fun i _ -> i < 10)
          (List.filter_map
             (function Scenario.Check (_, a) -> Some a | _ -> None)
             sc.Scenario.events)
      in
      let timed =
        List.mapi (fun i a -> (Temporal.Q.of_int (i + 2), a)) accesses
      in
      let control, session, o = replay () in
      let batch =
        Coordinated.System.check_batch control ~session ~object_id:o.Scenario.id
          ~program:o.Scenario.program timed
      in
      let control', session', o' = replay () in
      let singles =
        List.map
          (fun (time, a) ->
            Coordinated.System.check control' ~session:session'
              ~object_id:o'.Scenario.id ~program:o'.Scenario.program ~time a)
          timed
      in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d: batch = singles" seed)
        (List.map render singles) (List.map render batch))

let () =
  Alcotest.run "parallel"
    [
      ( "conformance",
        [
          Alcotest.test_case
            (Printf.sprintf "parallel = sequential over %d coalitions"
               (Array.length corpus))
            `Slow test_conformance;
          Alcotest.test_case "naive mode conforms too" `Quick
            test_conformance_naive_mode;
          Alcotest.test_case "one shard is the sequential engine" `Quick
            test_single_shard_is_sequential;
          Alcotest.test_case "sharded runs are byte-deterministic" `Quick
            test_sharded_determinism;
          Alcotest.test_case "big team-closed coalition conforms" `Slow
            test_big_coalition_conformance;
        ] );
      ( "partition",
        [
          Alcotest.test_case "team-closed, total, deterministic" `Quick
            test_partition_team_closed;
        ] );
      ( "merge",
        [ Alcotest.test_case "by-index interleave" `Quick test_merge_by_index ]
      );
      ( "backend",
        [ Alcotest.test_case "task order and errors" `Quick test_backend_contract ]
      );
      ( "batch",
        [
          Alcotest.test_case "check_batch = repeated check" `Quick
            test_batch_matches_single;
        ] );
    ]
