(* Tests for the SRAC constraint language: Definition 3.6 trace
   satisfaction, the constraint parser, the DFA compilation, the
   Theorem 3.2 symbolic checker (against the naive enumerator), proof
   stores and prefix feasibility. *)

open Srac

let q = Temporal.Q.of_int
let read_ r s = Sral.Access.read r ~at:s
let write_ r s = Sral.Access.write r ~at:s
let a1 = read_ "a" "s1"
let a2 = write_ "b" "s2"
let a3 = read_ "c" "s1"

let sat ?(proofs = Proof.always) t c = Trace_sat.sat ~proofs t c

(* --- selectors --- *)

let test_selector_matches () =
  Alcotest.(check bool) "any" true (Selector.matches Selector.Any a1);
  Alcotest.(check bool) "op" true
    (Selector.matches (Selector.Op Sral.Access.Read) a1);
  Alcotest.(check bool) "op no" false
    (Selector.matches (Selector.Op Sral.Access.Write) a1);
  Alcotest.(check bool) "resource" true
    (Selector.matches (Selector.Resource "a") a1);
  Alcotest.(check bool) "server" true
    (Selector.matches (Selector.Server "s1") a1);
  Alcotest.(check bool) "exactly" true
    (Selector.matches (Selector.Exactly a1) a1);
  Alcotest.(check bool) "and" true
    (Selector.matches
       (Selector.And (Selector.Resource "a", Selector.Server "s1"))
       a1);
  Alcotest.(check bool) "not" false
    (Selector.matches (Selector.Not Selector.Any) a1)

let test_selector_select () =
  let sel = Selector.Server "s1" in
  Alcotest.(check int) "subset" 2 (List.length (Selector.select sel [ a1; a2; a3 ]))

(* --- Definition 3.6 --- *)

let test_sat_true_false () =
  Alcotest.(check bool) "T" true (sat [] Formula.True);
  Alcotest.(check bool) "F" false (sat [] Formula.False)

let test_sat_atom () =
  Alcotest.(check bool) "present" true (sat [ a1; a2 ] (Formula.Atom a1));
  Alcotest.(check bool) "absent" false (sat [ a2 ] (Formula.Atom a1))

let test_sat_atom_needs_proof () =
  let proofs = Proof.create () in
  Alcotest.(check bool) "no proof: unsatisfied" false
    (sat ~proofs [ a1 ] (Formula.Atom a1));
  Proof.record proofs a1 ~time:(q 1);
  Alcotest.(check bool) "with proof" true
    (sat ~proofs [ a1 ] (Formula.Atom a1))

let test_sat_ordered () =
  let c = Formula.Ordered (a1, a2) in
  Alcotest.(check bool) "in order" true (sat [ a1; a3; a2 ] c);
  Alcotest.(check bool) "reversed" false (sat [ a2; a1 ] c);
  Alcotest.(check bool) "missing second" false (sat [ a1 ] c);
  Alcotest.(check bool) "same position both" false (sat [ a2 ] c)

let test_sat_ordered_same_access () =
  (* a ⊗ a requires two occurrences *)
  let c = Formula.Ordered (a1, a1) in
  Alcotest.(check bool) "one occurrence" false (sat [ a1 ] c);
  Alcotest.(check bool) "two occurrences" true (sat [ a1; a1 ] c)

let test_sat_card () =
  let sel = Selector.Server "s1" in
  let c lo hi = Formula.Card { lo; hi; sel } in
  Alcotest.(check bool) "0..2 with 2" true (sat [ a1; a2; a3 ] (c 0 (Some 2)));
  Alcotest.(check bool) "0..1 with 2" false (sat [ a1; a2; a3 ] (c 0 (Some 1)));
  Alcotest.(check bool) "3.. with 2" false (sat [ a1; a2; a3 ] (c 3 None));
  Alcotest.(check bool) "unbounded" true (sat [ a1; a2; a3 ] (c 1 None))

let test_sat_boolean () =
  let c =
    Formula.And
      (Formula.Atom a1, Formula.Or (Formula.Atom a2, Formula.Not (Formula.Atom a3)))
  in
  Alcotest.(check bool) "a1 and not a3" true (sat [ a1 ] c);
  Alcotest.(check bool) "a1, a3, no a2" false (sat [ a1; a3 ] c);
  Alcotest.(check bool) "all three" true (sat [ a1; a2; a3 ] c)

let test_sat_implies () =
  let c = Formula.implies (Formula.Atom a1) (Formula.Atom a2) in
  Alcotest.(check bool) "vacuous" true (sat [] c);
  Alcotest.(check bool) "antecedent only" false (sat [ a1 ] c);
  Alcotest.(check bool) "both" true (sat [ a1; a2 ] c)

let test_explain () =
  let c = Formula.And (Formula.Atom a1, Formula.at_most 0 Selector.Any) in
  (match Trace_sat.explain ~proofs:Proof.always [ a1 ] c with
  | Error msg ->
      Alcotest.(check bool) "mentions the bound" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "should fail");
  match Trace_sat.explain ~proofs:Proof.always [ a1 ] (Formula.Atom a1) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* --- parser --- *)

let test_formula_parser () =
  let cases =
    [
      ("true", Formula.True);
      ("false", Formula.False);
      ("done(read a @ s1)", Formula.Atom a1);
      ("seq(read a @ s1, write b @ s2)", Formula.Ordered (a1, a2));
      ( "count(0, 5, res=rsw)",
        Formula.Card { lo = 0; hi = Some 5; sel = Selector.Resource "rsw" } );
      ( "count(2, inf, any)",
        Formula.Card { lo = 2; hi = None; sel = Selector.Any } );
      ( "done(read a @ s1) && done(write b @ s2)",
        Formula.And (Formula.Atom a1, Formula.Atom a2) );
      ( "done(read a @ s1) or !done(write b @ s2)",
        Formula.Or (Formula.Atom a1, Formula.Not (Formula.Atom a2)) );
      ( "done(read a @ s1) -> done(write b @ s2)",
        Formula.implies (Formula.Atom a1) (Formula.Atom a2) );
      ( "count(0, 3, res=a & srv=s1)",
        Formula.Card
          {
            lo = 0;
            hi = Some 3;
            sel = Selector.And (Selector.Resource "a", Selector.Server "s1");
          } );
      ( "count(0, 3, ~op=read)",
        Formula.Card
          { lo = 0; hi = Some 3; sel = Selector.Not (Selector.Op Sral.Access.Read) }
      );
    ]
  in
  List.iter
    (fun (src, expected) ->
      let actual = Formula.of_string src in
      Alcotest.(check bool) src true (Formula.equal actual expected))
    cases

let test_formula_parser_errors () =
  List.iter
    (fun src ->
      match Formula.of_string src with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" src))
    [ "done()"; "count(1, 2)"; "done(read a @ s1) &&"; "nonsense"; "" ]

let test_formula_pp_roundtrip () =
  List.iter
    (fun src ->
      let c = Formula.of_string src in
      let c2 = Formula.of_string (Formula.to_string c) in
      Alcotest.(check bool) src true (Formula.equal c c2))
    [
      "done(read a @ s1) && (count(0, 5, srv=s1) or !done(write b @ s2))";
      "seq(op(hash) m @ s1, op(hash) n @ s2) -> true";
      "count(1, inf, (res=a | res=b) & ~srv=s3)";
    ]

(* --- compile: DFA semantics match Definition 3.6 (sans proofs) --- *)

(* random constraints come from the shared generator ([test/gen.ml]) —
   the same distribution the lazy-DFA and analysis suites draw from *)
let formula_gen rng = Gen.srac_formula ~accesses:[ a1; a2; a3 ] rng

let compile_matches_def36 =
  QCheck.Test.make
    ~name:"compiled DFA agrees with Definition 3.6 on random traces"
    ~count:200
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let traces =
           List.init 15 (fun _ ->
               List.init (Random.State.int rng 6) (fun _ ->
                   List.nth [ a1; a2; a3 ] (Random.State.int rng 3)))
         in
         (c, traces)))
    (fun (c, traces) ->
      let table = Automata.Symbol.of_accesses [ a1; a2; a3 ] in
      let dfa = Compile.dfa ~table ~proofs:Proof.always c in
      List.for_all
        (fun t ->
          let word = List.map (Automata.Symbol.intern table) t in
          Automata.Dfa.accepts dfa word = sat t c)
        traces)

(* --- Theorem 3.2 checker --- *)

let prog = Sral.Parser.program

let test_exists_basic () =
  let p = prog "read a @ s1; if c then { write b @ s2 } else { read c @ s1 }" in
  Alcotest.(check bool) "can do a1 then a2" true
    (Program_sat.check_bool p (Formula.Ordered (a1, a2)));
  Alcotest.(check bool) "cannot do a2 twice" false
    (Program_sat.check_bool p (Formula.Ordered (a2, a2)))

let test_forall_basic () =
  let p = prog "read a @ s1; if c then { write b @ s2 } else { read c @ s1 }" in
  Alcotest.(check bool) "always reads a" true
    (Program_sat.check_bool ~modality:Program_sat.Forall p (Formula.Atom a1));
  Alcotest.(check bool) "not always writes b" false
    (Program_sat.check_bool ~modality:Program_sat.Forall p (Formula.Atom a2))

let test_forall_witness () =
  let p = prog "if c then { read a @ s1 } else { read c @ s1 }" in
  let outcome =
    Program_sat.check ~modality:Program_sat.Forall p (Formula.Atom a1)
  in
  Alcotest.(check bool) "fails" false outcome.Program_sat.holds;
  match outcome.Program_sat.witness with
  | Some t ->
      Alcotest.(check bool) "witness avoids a1" false (Sral.Trace.mem a1 t)
  | None -> Alcotest.fail "expected a counterexample"

let test_loop_cardinality () =
  (* a loop can exceed any bound, so Forall at_most fails with a
     witness, while Exists succeeds *)
  let p = prog "while c do { read a @ s1 }" in
  let bound = Formula.at_most 2 (Selector.Resource "a") in
  Alcotest.(check bool) "exists within bound" true
    (Program_sat.check_bool p bound);
  let outcome = Program_sat.check ~modality:Program_sat.Forall p bound in
  Alcotest.(check bool) "forall fails" false outcome.Program_sat.holds;
  match outcome.Program_sat.witness with
  | Some t -> Alcotest.(check int) "shortest violator" 3 (Sral.Trace.length t)
  | None -> Alcotest.fail "expected a violating trace"

let test_infinite_model_decided () =
  (* nested loops: the enumerator would explode, the symbolic checker
     answers instantly *)
  let p =
    prog
      "while c1 do { read a @ s1; while c2 do { write b @ s2 }; read c @ s1 }"
  in
  Alcotest.(check bool) "obligation" true
    (Program_sat.check_bool p
       (Formula.And (Formula.Atom a1, Formula.Ordered (a2, a3))))

let test_proofs_gate_atoms () =
  let p = prog "read a @ s1" in
  let proofs = Proof.create () in
  Alcotest.(check bool) "atom blocked without proof" false
    (Program_sat.check_bool ~proofs p (Formula.Atom a1));
  Proof.record proofs a1 ~time:(q 0);
  Alcotest.(check bool) "atom passes with proof" true
    (Program_sat.check_bool ~proofs p (Formula.Atom a1))

let naive_agreement =
  QCheck.Test.make
    ~name:"Theorem 3.2 checker = naive enumeration (loop-free, both modalities)"
    ~count:200
    (QCheck.make (fun rng ->
         let p =
           Sral.Generate.loop_free_program ~resources:[ "a"; "b"; "c" ]
             ~servers:[ "s1"; "s2" ] ~size:6 rng
         in
         (p, formula_gen rng)))
    (fun (p, c) ->
      List.for_all
        (fun modality ->
          Program_sat.check_bool ~modality p c
          = (Naive.check ~modality p c).Program_sat.holds)
        [ Program_sat.Exists; Program_sat.Forall ])

(* --- prefix feasibility --- *)

let test_prefix_feasible_card () =
  let c = Formula.at_most 2 (Selector.Resource "a") in
  Alcotest.(check bool) "empty prefix" true
    (Program_sat.prefix_feasible ~performed:[] c);
  Alcotest.(check bool) "at bound" true
    (Program_sat.prefix_feasible ~performed:[ a1; a1 ] c);
  Alcotest.(check bool) "over bound" false
    (Program_sat.prefix_feasible ~performed:[ a1; a1; a1 ] c)

let test_prefix_feasible_obligation () =
  let c = Formula.Ordered (a1, a2) in
  Alcotest.(check bool) "obligation always feasible" true
    (Program_sat.prefix_feasible ~performed:[] c);
  Alcotest.(check bool) "after first" true
    (Program_sat.prefix_feasible ~performed:[ a1 ] c);
  Alcotest.(check bool) "satisfied" true
    (Program_sat.prefix_feasible ~performed:[ a1; a2 ] c)

let test_prefix_feasible_negation () =
  (* ¬(a1 performed): once a1 happened, infeasible forever *)
  let c = Formula.Not (Formula.Atom a1) in
  Alcotest.(check bool) "before" true
    (Program_sat.prefix_feasible ~performed:[] c);
  Alcotest.(check bool) "after" false
    (Program_sat.prefix_feasible ~performed:[ a1 ] c)

(* --- syntactic derivatives --- *)

let test_derivative_atoms () =
  let c = Formula.Atom a1 in
  Alcotest.(check bool) "discharged" true
    (Formula.equal (Derivative.after c a1) Formula.True);
  Alcotest.(check bool) "other access" true
    (Formula.equal (Derivative.after c a2) c)

let test_derivative_ordered () =
  let c = Formula.Ordered (a1, a2) in
  (* consuming a1 leaves: a2 suffices (or a fresh pair) *)
  let d = Derivative.after c a1 in
  Alcotest.(check bool) "satisfied by a2 next" true
    (Derivative.satisfied_by_empty (Derivative.after d a2));
  (* consuming a2 first leaves the obligation untouched *)
  Alcotest.(check bool) "a2 first no progress" true
    (Formula.equal (Derivative.after c a2) c)

let test_derivative_card () =
  let c = Formula.at_most 1 (Selector.Resource "a") in
  let d1 = Derivative.after c a1 in
  (* one a-access used: zero budget left *)
  (match d1 with
  | Formula.Card { hi = Some 0; _ } -> ()
  | other -> Alcotest.fail (Formula.to_string other));
  Alcotest.(check bool) "second violates" true
    (Formula.equal (Derivative.after d1 a1) Formula.False);
  (* non-matching accesses are free *)
  Alcotest.(check bool) "non-matching free" true
    (Formula.equal (Derivative.after c a2) c)

let derivative_agrees_with_sat =
  QCheck.Test.make
    ~name:"derivative route = Definition 3.6 (random formulas/traces)"
    ~count:300
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let trace =
           List.init (Random.State.int rng 7) (fun _ ->
               List.nth [ a1; a2; a3 ] (Random.State.int rng 3))
         in
         (c, trace)))
    (fun (c, trace) ->
      Derivative.satisfied_by_empty (Derivative.after_trace c trace)
      = sat trace c)

let derivative_feasibility_agrees =
  QCheck.Test.make
    ~name:"syntactic residual feasibility = DFA prefix feasibility"
    ~count:200
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let trace =
           List.init (Random.State.int rng 5) (fun _ ->
               List.nth [ a1; a2; a3 ] (Random.State.int rng 3))
         in
         (c, trace)))
    (fun (c, trace) ->
      let residual = Derivative.after_trace c trace in
      let universe = [ a1; a2; a3 ] in
      (* feasibility of extending [trace], both routes over the same
         three-access universe *)
      let dfa_route =
        Program_sat.prefix_feasible ~universe ~performed:trace c
      in
      let syntactic_route =
        let table =
          Automata.Symbol.of_accesses (Formula.accesses c @ trace @ universe)
        in
        not
          (Automata.Dfa.is_empty
             (Compile.dfa ~table ~proofs:Proof.always residual))
      in
      dfa_route = syntactic_route)

(* --- lazy-derivative machines (the decide_lazy spatial core) --- *)

let pool = [ a1; a2; a3 ]
let trace_gen rng n = List.init (Random.State.int rng n) (fun _ -> Gen.pick rng pool)

let walk m t = List.fold_left (Lazy_dfa.step_access m) (Lazy_dfa.start m) t

(* Per-symbol agreement with the trace-satisfaction oracle, with greedy
   shrinking down to a minimal failing subformula. *)
let test_lazy_nullable_matches_sat () =
  Gen.each_seed ~salt:5150 ~count:300 (fun ~seed rng ->
      let c = formula_gen rng in
      let traces = List.init 10 (fun _ -> trace_gen rng 7) in
      let agrees c =
        let m = Lazy_dfa.create c in
        List.for_all (fun t -> Lazy_dfa.nullable m (walk m t) = sat t c) traces
      in
      if not (agrees c) then begin
        let small =
          Gen.shrink
            ~fails:(fun c -> not (agrees c))
            ~candidates:Gen.formula_subterms c
        in
        Gen.report_minimized ~seed ~what:"constraint" Formula.pp small;
        Alcotest.failf "seed %d: lazy nullability diverges from Definition 3.6"
          seed
      end)

let lazy_feasible_matches_oracle =
  QCheck.Test.make
    ~name:"Lazy_dfa.feasible = DFA prefix feasibility (interleaved, warm)"
    ~count:200
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let trace = trace_gen rng 6 in
         (c, trace)))
    (fun (c, trace) ->
      let m = Lazy_dfa.create c in
      let q = ref (Lazy_dfa.start m) in
      let performed = ref [] in
      let step_ok a =
        q := Lazy_dfa.step_access m !q a;
        performed := a :: !performed;
        (* the machine arena is now exactly the oracle's default
           universe: the constraint's accesses plus the prefix *)
        let want =
          Program_sat.prefix_feasible ~performed:(List.rev !performed) c
        in
        Lazy_dfa.feasible m !q = want
        (* asking again must hit the memo and agree *)
        && Lazy_dfa.feasible m !q = want
      in
      Program_sat.prefix_feasible ~performed:[] c
      = Lazy_dfa.feasible m !q
      && List.for_all step_ok trace)

let test_lazy_cold_warm_identical () =
  Gen.each_seed ~salt:5151 ~count:200 (fun ~seed rng ->
      let c = formula_gen rng in
      let t = trace_gen rng 7 in
      let m = Lazy_dfa.create c in
      let run () =
        let q = walk m t in
        (q, Lazy_dfa.nullable m q, Lazy_dfa.feasible m q)
      in
      let cold = run () in
      let stats () =
        (Lazy_dfa.num_states m, Lazy_dfa.num_symbols m, Lazy_dfa.transitions m)
      in
      let s0 = stats () in
      let warm = run () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: warm replay identical" seed)
        true (cold = warm);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: warm replay materializes nothing" seed)
        true
        (s0 = stats ());
      (* hypothetical (possibly denied) accesses answer the oracle but
         never enter the arena *)
      let foreign = read_ "zz" "s9" in
      let q, _, _ = cold in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: hypothetical access = Definition 3.6" seed)
        (sat (t @ [ foreign ]) c)
        (Lazy_dfa.nullable_after m q foreign);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: hypothetical access leaves arena alone" seed)
        true
        (s0 = stats ()))

let lazy_machine_deterministic =
  QCheck.Test.make
    ~name:"two machines over the same trace are bit-identical" ~count:150
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let trace = trace_gen rng 7 in
         (c, trace)))
    (fun (c, trace) ->
      let probe () =
        let m = Lazy_dfa.create c in
        let q = walk m trace in
        ( q,
          Lazy_dfa.nullable m q,
          Lazy_dfa.feasible m q,
          Lazy_dfa.num_states m,
          Lazy_dfa.num_symbols m,
          Lazy_dfa.transitions m )
      in
      probe () = probe ())

(* --- proof store --- *)

let test_proof_store () =
  let proofs = Proof.create () in
  Proof.record proofs a1 ~time:(q 3);
  Proof.record proofs a2 ~time:(q 1);
  Proof.record proofs a1 ~time:(q 5);
  Alcotest.(check bool) "holds" true (Proof.holds proofs a1);
  Alcotest.(check bool) "not held" false (Proof.holds proofs a3);
  Alcotest.(check int) "size" 3 (Proof.size proofs);
  Alcotest.(check int) "times" 2 (List.length (Proof.times proofs a1));
  Alcotest.(check bool) "holds_before" true
    (Proof.holds_before proofs a1 (q 3));
  Alcotest.(check bool) "not before" false
    (Proof.holds_before proofs a1 (q 2));
  Alcotest.(check int) "count matching" 2
    (Proof.count_matching proofs (fun a -> Sral.Access.equal a a1));
  (* performed trace is time-ordered *)
  let t = Proof.performed_trace proofs in
  Alcotest.(check bool) "time order" true
    (Sral.Trace.equal t [ a2; a1; a1 ])

let test_proof_copy_isolated () =
  let proofs = Proof.create () in
  Proof.record proofs a1 ~time:(q 1);
  let snapshot = Proof.copy proofs in
  Proof.record proofs a2 ~time:(q 2);
  Alcotest.(check int) "original grew" 2 (Proof.size proofs);
  Alcotest.(check int) "copy unchanged" 1 (Proof.size snapshot)

let test_proof_always_readonly () =
  Alcotest.(check bool) "always holds" true (Proof.holds Proof.always a1);
  Alcotest.check_raises "record rejected"
    (Invalid_argument "Proof.record: the Always store is read-only") (fun () ->
      Proof.record Proof.always a1 ~time:(q 0))

(* --- simplify --- *)

let test_simplify_cases () =
  let cases =
    [
      ("!!done(read a @ s1)", "done(read a @ s1)");
      ("done(read a @ s1) && true", "done(read a @ s1)");
      ("done(read a @ s1) && false", "false");
      ("done(read a @ s1) or true", "true");
      ("done(read a @ s1) or done(read a @ s1)", "done(read a @ s1)");
      ("done(read a @ s1) && !done(read a @ s1)", "false");
      ("done(read a @ s1) or !done(read a @ s1)", "true");
      ("count(0, inf, any)", "true");
      ("done(read a @ s1) && (done(read a @ s1) or done(write b @ s2))",
       "done(read a @ s1)");
    ]
  in
  List.iter
    (fun (src, expected) ->
      let simplified = Simplify.simplify (Formula.of_string src) in
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" src expected)
        true
        (Formula.equal simplified (Formula.of_string expected)))
    cases

let test_nnf () =
  let c = Formula.of_string "!(done(read a @ s1) && !done(write b @ s2))" in
  match Simplify.nnf c with
  | Formula.Or (Formula.Not (Formula.Atom _), Formula.Atom _) -> ()
  | other ->
      Alcotest.fail (Format.asprintf "unexpected nnf: %a" Formula.pp other)

let test_trivial_predicates () =
  Alcotest.(check bool) "trivially true" true
    (Simplify.is_trivially_true (Formula.of_string "count(0, inf, any) or false"));
  Alcotest.(check bool) "trivially false" true
    (Simplify.is_trivially_false
       (Formula.of_string "done(read a @ s1) && false"))

let simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify and nnf preserve Definition 3.6" ~count:200
    (QCheck.make (fun rng ->
         let c = formula_gen rng in
         let traces =
           List.init 10 (fun _ ->
               List.init (Random.State.int rng 5) (fun _ ->
                   List.nth [ a1; a2; a3 ] (Random.State.int rng 3)))
         in
         (c, traces)))
    (fun (c, traces) ->
      let s = Simplify.simplify c in
      let n = Simplify.nnf c in
      Formula.size s <= Formula.size c
      && List.for_all
           (fun t ->
             let reference = sat t c in
             sat t s = reference && sat t n = reference)
           traces)

(* simplify is a fixed point: one pass reaches the normal form, so the
   lazy machines' state interning (which keys on simplified residuals)
   never sees two spellings of the same canonical formula *)
let simplify_idempotent =
  QCheck.Test.make ~name:"simplify is idempotent (fixed point)" ~count:300
    (QCheck.make formula_gen) (fun c ->
      let s = Simplify.simplify c in
      Formula.equal (Simplify.simplify s) s)

let () =
  Alcotest.run "srac"
    [
      ( "selector",
        [
          Alcotest.test_case "matches" `Quick test_selector_matches;
          Alcotest.test_case "select" `Quick test_selector_select;
        ] );
      ( "definition-3.6",
        [
          Alcotest.test_case "true/false" `Quick test_sat_true_false;
          Alcotest.test_case "atom" `Quick test_sat_atom;
          Alcotest.test_case "atom needs proof" `Quick test_sat_atom_needs_proof;
          Alcotest.test_case "ordered" `Quick test_sat_ordered;
          Alcotest.test_case "ordered same access" `Quick
            test_sat_ordered_same_access;
          Alcotest.test_case "cardinality" `Quick test_sat_card;
          Alcotest.test_case "boolean" `Quick test_sat_boolean;
          Alcotest.test_case "implies" `Quick test_sat_implies;
          Alcotest.test_case "explain" `Quick test_explain;
        ] );
      ( "parser",
        [
          Alcotest.test_case "cases" `Quick test_formula_parser;
          Alcotest.test_case "errors" `Quick test_formula_parser_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_formula_pp_roundtrip;
        ] );
      ("compile", [ QCheck_alcotest.to_alcotest compile_matches_def36 ]);
      ( "theorem-3.2",
        [
          Alcotest.test_case "exists" `Quick test_exists_basic;
          Alcotest.test_case "forall" `Quick test_forall_basic;
          Alcotest.test_case "forall witness" `Quick test_forall_witness;
          Alcotest.test_case "loop cardinality" `Quick test_loop_cardinality;
          Alcotest.test_case "infinite model" `Quick test_infinite_model_decided;
          Alcotest.test_case "proofs gate atoms" `Quick test_proofs_gate_atoms;
          QCheck_alcotest.to_alcotest naive_agreement;
        ] );
      ( "prefix-feasible",
        [
          Alcotest.test_case "cardinality" `Quick test_prefix_feasible_card;
          Alcotest.test_case "obligation" `Quick test_prefix_feasible_obligation;
          Alcotest.test_case "negation" `Quick test_prefix_feasible_negation;
        ] );
      ( "simplify",
        [
          Alcotest.test_case "cases" `Quick test_simplify_cases;
          Alcotest.test_case "nnf" `Quick test_nnf;
          Alcotest.test_case "trivial predicates" `Quick
            test_trivial_predicates;
          QCheck_alcotest.to_alcotest simplify_preserves_semantics;
          QCheck_alcotest.to_alcotest simplify_idempotent;
        ] );
      ( "derivative",
        [
          Alcotest.test_case "atoms" `Quick test_derivative_atoms;
          Alcotest.test_case "ordered" `Quick test_derivative_ordered;
          Alcotest.test_case "cardinality" `Quick test_derivative_card;
          QCheck_alcotest.to_alcotest derivative_agrees_with_sat;
          QCheck_alcotest.to_alcotest derivative_feasibility_agrees;
        ] );
      ( "lazy-dfa",
        [
          Alcotest.test_case "nullability = Definition 3.6 (shrinking)" `Quick
            test_lazy_nullable_matches_sat;
          QCheck_alcotest.to_alcotest lazy_feasible_matches_oracle;
          Alcotest.test_case "cold = warm, arena stays clean" `Quick
            test_lazy_cold_warm_identical;
          QCheck_alcotest.to_alcotest lazy_machine_deterministic;
        ] );
      ( "proofs",
        [
          Alcotest.test_case "store" `Quick test_proof_store;
          Alcotest.test_case "copy isolated" `Quick test_proof_copy_isolated;
          Alcotest.test_case "always readonly" `Quick test_proof_always_readonly;
        ] );
    ]
