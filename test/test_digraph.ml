(* Tests for the digraph substrate: structure, topological sorting,
   SCCs, reachability, closure and generators. *)

let fig1 () = Scenarios.Integrity_audit.module_graph ()

let test_structure () =
  let g = Digraph.of_edges [ ("a", "b"); ("a", "c"); ("b", "c") ] in
  Alcotest.(check int) "vertices" 3 (Digraph.vertex_count g);
  Alcotest.(check int) "edges" 3 (Digraph.edge_count g);
  Alcotest.(check (list string)) "succ a" [ "b"; "c" ] (Digraph.successors g "a");
  Alcotest.(check (list string)) "pred c" [ "a"; "b" ]
    (Digraph.predecessors g "c");
  Alcotest.(check int) "out degree" 2 (Digraph.out_degree g "a");
  Alcotest.(check int) "in degree" 2 (Digraph.in_degree g "c");
  Alcotest.(check bool) "mem edge" true (Digraph.mem_edge g "a" "b");
  Alcotest.(check bool) "no reverse edge" false (Digraph.mem_edge g "b" "a")

let test_idempotent_adds () =
  let g = Digraph.create () in
  Digraph.add_edge g "x" "y";
  Digraph.add_edge g "x" "y";
  Digraph.add_vertex g "x";
  Alcotest.(check int) "one edge" 1 (Digraph.edge_count g);
  Alcotest.(check int) "two vertices" 2 (Digraph.vertex_count g)

let test_topological_sort () =
  let g = Digraph.of_edges [ ("a", "b"); ("b", "c"); ("a", "c") ] in
  (match Digraph.topological_sort g with
  | Some order ->
      Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] order
  | None -> Alcotest.fail "dag expected");
  let cyclic = Digraph.of_edges [ ("a", "b"); ("b", "a") ] in
  Alcotest.(check bool) "cycle detected" true
    (Digraph.topological_sort cyclic = None);
  Alcotest.(check bool) "is_dag" false (Digraph.is_dag cyclic)

let test_topo_respects_edges () =
  let g = fig1 () in
  match Digraph.topological_sort g with
  | None -> Alcotest.fail "figure 1 is a DAG"
  | Some order ->
      let position v =
        let rec find i = function
          | [] -> Alcotest.fail ("missing " ^ v)
          | x :: rest -> if String.equal x v then i else find (i + 1) rest
        in
        find 0 order
      in
      List.iter
        (fun (u, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s before %s" u v)
            true
            (position u < position v))
        (Digraph.edges g)

let test_sccs () =
  let g =
    Digraph.of_edges
      [ ("a", "b"); ("b", "c"); ("c", "a"); ("c", "d"); ("d", "e"); ("e", "d") ]
  in
  let sccs = Digraph.sccs g in
  let sorted = List.sort compare (List.map (String.concat ",") sccs) in
  Alcotest.(check (list string)) "components" [ "a,b,c"; "d,e" ] sorted

let test_sccs_dag_singletons () =
  let g = fig1 () in
  Alcotest.(check int) "one scc per module" (Digraph.vertex_count g)
    (List.length (Digraph.sccs g))

let test_reachability_closure () =
  let g = Digraph.of_edges [ ("a", "b"); ("b", "c"); ("d", "c") ] in
  Alcotest.(check (list string)) "from a" [ "a"; "b"; "c" ]
    (Digraph.reachable_from g "a");
  Alcotest.(check (list string)) "unknown" [] (Digraph.reachable_from g "zz");
  let tc = Digraph.transitive_closure g in
  Alcotest.(check bool) "closure edge" true (Digraph.mem_edge tc "a" "c");
  Alcotest.(check bool) "no self loops" false (Digraph.mem_edge tc "a" "a")

let test_reverse () =
  let g = Digraph.of_edges [ ("a", "b") ] in
  let r = Digraph.reverse g in
  Alcotest.(check bool) "reversed" true (Digraph.mem_edge r "b" "a");
  Alcotest.(check bool) "original gone" false (Digraph.mem_edge r "a" "b")

let test_to_dot () =
  let g = Digraph.of_edges [ ("a", "b") ] in
  let dot =
    Digraph.to_dot ~name:"test"
      ~vertex_attr:(fun v -> if v = "a" then Some "color=red" else None)
      g
  in
  Alcotest.(check bool) "has header" true
    (String.length dot > 0 && String.sub dot 0 12 = "digraph test");
  let contains hay needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length hay
      && (String.sub hay i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "has attr" true (contains dot "color=red")

let test_random_dag_is_dag () =
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 20 do
    let g =
      Digraph.random_dag
        ~vertices:(List.init 12 (fun i -> Printf.sprintf "v%02d" i))
        ~edge_prob:0.3 rng
    in
    Alcotest.(check bool) "random dag acyclic" true (Digraph.is_dag g)
  done

let test_layered () =
  let rng = Random.State.make [| 5 |] in
  let g = Digraph.layered ~layers:4 ~width:3 ~fanout:2 rng in
  Alcotest.(check int) "vertices" 12 (Digraph.vertex_count g);
  Alcotest.(check bool) "layered is dag" true (Digraph.is_dag g)

let () =
  Alcotest.run "digraph"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure;
          Alcotest.test_case "idempotent" `Quick test_idempotent_adds;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          Alcotest.test_case "topo respects edges" `Quick
            test_topo_respects_edges;
          Alcotest.test_case "sccs" `Quick test_sccs;
          Alcotest.test_case "dag sccs singleton" `Quick
            test_sccs_dag_singletons;
          Alcotest.test_case "reachability/closure" `Quick
            test_reachability_closure;
          Alcotest.test_case "reverse" `Quick test_reverse;
        ] );
      ( "output",
        [ Alcotest.test_case "dot" `Quick test_to_dot ] );
      ( "generators",
        [
          Alcotest.test_case "random dag" `Quick test_random_dag_is_dag;
          Alcotest.test_case "layered" `Quick test_layered;
        ] );
    ]
