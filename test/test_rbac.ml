(* Tests for the RBAC baseline: permissions, hierarchy, policy store,
   sessions, separation of duty and the plain decision engine. *)

open Rbac

let p op target = Perm.make ~operation:op ~target

(* --- permissions --- *)

let test_perm_matches_exact () =
  Alcotest.(check bool) "exact" true
    (Perm.matches (p "read" "db@s1") ~operation:"read" ~target:"db@s1");
  Alcotest.(check bool) "wrong op" false
    (Perm.matches (p "read" "db@s1") ~operation:"write" ~target:"db@s1");
  Alcotest.(check bool) "wrong server" false
    (Perm.matches (p "read" "db@s1") ~operation:"read" ~target:"db@s2")

let test_perm_wildcards () =
  Alcotest.(check bool) "op wildcard" true
    (Perm.matches (p "*" "db@s1") ~operation:"write" ~target:"db@s1");
  Alcotest.(check bool) "server wildcard" true
    (Perm.matches (p "read" "db@*") ~operation:"read" ~target:"db@s9");
  Alcotest.(check bool) "resource wildcard" true
    (Perm.matches (p "read" "*@s1") ~operation:"read" ~target:"x@s1");
  Alcotest.(check bool) "full wildcard" true
    (Perm.matches (p "*" "*@*") ~operation:"hash" ~target:"m@s3");
  Alcotest.(check bool) "resource wildcard wrong server" false
    (Perm.matches (p "read" "*@s1") ~operation:"read" ~target:"x@s2")

let test_perm_string_roundtrip () =
  let perm = p "read" "db@s1" in
  Alcotest.(check bool) "roundtrip" true
    (Perm.equal perm (Perm.of_string (Perm.to_string perm)));
  Alcotest.check_raises "no colon"
    (Invalid_argument "Perm.of_string: missing ':' in \"nope\"") (fun () ->
      ignore (Perm.of_string "nope"))

let test_perm_overlaps () =
  let check a b expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %s" (Perm.to_string a) (Perm.to_string b))
      expected (Perm.overlaps a b);
    Alcotest.(check bool) "symmetric" expected (Perm.overlaps b a)
  in
  check (p "read" "db@s1") (p "read" "db@s1") true;
  check (p "read" "db@s1") (p "read" "*@*") true;
  check (p "*" "*@*") (p "hash" "m@s3") true;
  check (p "read" "db@s1") (p "write" "db@s1") false;
  check (p "read" "db@s1") (p "read" "db@s2") false;
  check (p "read" "db@*") (p "read" "*@s2") true

(* --- hierarchy --- *)

let test_hierarchy_inheritance () =
  let h = Hierarchy.create () in
  Hierarchy.add_inheritance h ~senior:"chief" ~junior:"auditor";
  Hierarchy.add_inheritance h ~senior:"auditor" ~junior:"reader";
  Alcotest.(check (list string)) "juniors of chief"
    [ "auditor"; "chief"; "reader" ]
    (Hierarchy.juniors h "chief");
  Alcotest.(check (list string)) "seniors of reader"
    [ "auditor"; "chief"; "reader" ]
    (Hierarchy.seniors h "reader");
  Alcotest.(check bool) "dominates transitively" true
    (Hierarchy.dominates h ~senior:"chief" ~junior:"reader");
  Alcotest.(check bool) "not upward" false
    (Hierarchy.dominates h ~senior:"reader" ~junior:"chief");
  Alcotest.(check bool) "reflexive" true
    (Hierarchy.dominates h ~senior:"reader" ~junior:"reader")

let test_hierarchy_cycle_rejected () =
  let h = Hierarchy.create () in
  Hierarchy.add_inheritance h ~senior:"a" ~junior:"b";
  Hierarchy.add_inheritance h ~senior:"b" ~junior:"c";
  Alcotest.check_raises "direct cycle" (Hierarchy.Cycle ("c", "a")) (fun () ->
      Hierarchy.add_inheritance h ~senior:"c" ~junior:"a");
  Alcotest.check_raises "self cycle" (Hierarchy.Cycle ("a", "a")) (fun () ->
      Hierarchy.add_inheritance h ~senior:"a" ~junior:"a")

(* --- policy --- *)

let fixture () =
  let policy = Policy.create () in
  List.iter (Policy.add_user policy) [ "alice"; "bob" ];
  List.iter (Policy.add_role policy) [ "chief"; "auditor"; "reader" ];
  Policy.add_inheritance policy ~senior:"chief" ~junior:"auditor";
  Policy.add_inheritance policy ~senior:"auditor" ~junior:"reader";
  Policy.grant policy "reader" (p "read" "*@*");
  Policy.grant policy "auditor" (p "hash" "*@*");
  Policy.grant policy "chief" (p "write" "report@s1");
  Policy.assign_user policy "alice" "auditor";
  Policy.assign_user policy "bob" "reader";
  policy

let test_policy_review () =
  let policy = fixture () in
  Alcotest.(check (list string)) "alice assigned" [ "auditor" ]
    (Policy.assigned_roles policy "alice");
  Alcotest.(check (list string)) "alice authorized"
    [ "auditor"; "reader" ]
    (Policy.authorized_roles policy "alice");
  Alcotest.(check int) "auditor perms include inherited" 2
    (List.length (Policy.role_permissions policy "auditor"));
  Alcotest.(check int) "chief perms" 3
    (List.length (Policy.role_permissions policy "chief"));
  Alcotest.(check int) "alice perms" 2
    (List.length (Policy.user_permissions policy "alice"));
  Alcotest.(check (list string)) "users of reader" [ "bob" ]
    (Policy.users_of_role policy "reader")

let test_policy_unknown () =
  let policy = fixture () in
  Alcotest.check_raises "unknown role" (Policy.Unknown ("role", "ghost"))
    (fun () -> Policy.assign_user policy "alice" "ghost");
  Alcotest.check_raises "unknown user" (Policy.Unknown ("user", "carol"))
    (fun () -> Policy.assign_user policy "carol" "reader");
  Alcotest.check_raises "grant unknown role"
    (Policy.Unknown ("role", "ghost")) (fun () ->
      Policy.grant policy "ghost" (p "read" "x@y"))

let test_policy_deassign_revoke () =
  let policy = fixture () in
  Policy.deassign_user policy "alice" "auditor";
  Alcotest.(check (list string)) "deassigned" []
    (Policy.assigned_roles policy "alice");
  Policy.revoke policy "reader" (p "read" "*@*");
  Alcotest.(check int) "revoked" 0
    (List.length (Policy.direct_permissions policy "reader"))

(* --- separation of duty --- *)

let test_ssd () =
  let policy = fixture () in
  Policy.add_role policy "payer";
  Policy.add_role policy "approver";
  let c = Sod.make ~name:"pay-vs-approve" ~roles:[ "payer"; "approver" ] ~max_roles:1 in
  Policy.add_ssd policy c;
  Policy.assign_user policy "alice" "payer";
  (try
     Policy.assign_user policy "alice" "approver";
     Alcotest.fail "SSD should block"
   with Policy.Ssd_violation (c', "alice", "approver") ->
     Alcotest.(check string) "constraint name" "pay-vs-approve" c'.Sod.name)

let test_ssd_retroactive_rejected () =
  let policy = fixture () in
  Policy.add_role policy "payer";
  Policy.add_role policy "approver";
  Policy.assign_user policy "alice" "payer";
  Policy.assign_user policy "alice" "approver";
  match
    Policy.add_ssd policy
      (Sod.make ~name:"late" ~roles:[ "payer"; "approver" ] ~max_roles:1)
  with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "retroactive violation should be rejected"

let test_sod_validation () =
  Alcotest.check_raises "max_roles < 1"
    (Invalid_argument "Sod.make: max_roles must be >= 1") (fun () ->
      ignore (Sod.make ~name:"x" ~roles:[ "a"; "b" ] ~max_roles:0));
  Alcotest.check_raises "too few roles"
    (Invalid_argument "Sod.make: need at least two conflicting roles")
    (fun () -> ignore (Sod.make ~name:"x" ~roles:[ "a" ] ~max_roles:1))

(* --- the version counter: the admin verifier's cache stamp --- *)

(* Every successful administrative mutation must bump the version, and
   a rejected one must leave it alone — Analysis.Admin memoizes its
   leaf oracle on deployment fingerprints and the Policy_changed trace
   event records the version, so a missed bump is a stale-cache bug
   and a spurious bump is a phantom audit event. *)
let test_version_monotone_across_admin_ops () =
  let policy = Policy.create () in
  let v = ref (Policy.version policy) in
  let bumped what f =
    f ();
    let v' = Policy.version policy in
    if v' <= !v then
      Alcotest.failf "%s did not bump the version (%d -> %d)" what !v v';
    v := v'
  in
  bumped "add_user" (fun () -> Policy.add_user policy "alice");
  bumped "add_user bob" (fun () -> Policy.add_user policy "bob");
  bumped "add_role payer" (fun () -> Policy.add_role policy "payer");
  bumped "add_role approver" (fun () -> Policy.add_role policy "approver");
  bumped "add_role clerk" (fun () -> Policy.add_role policy "clerk");
  bumped "add_inheritance" (fun () ->
      Policy.add_inheritance policy ~senior:"payer" ~junior:"clerk");
  bumped "assign_user" (fun () -> Policy.assign_user policy "alice" "payer");
  bumped "grant" (fun () -> Policy.grant policy "payer" (p "read" "db@s1"));
  bumped "revoke" (fun () -> Policy.revoke policy "payer" (p "read" "db@s1"));
  bumped "deassign_user" (fun () ->
      Policy.deassign_user policy "alice" "payer");
  bumped "add_ssd" (fun () ->
      Policy.add_ssd policy
        (Sod.make ~name:"s" ~roles:[ "payer"; "approver" ] ~max_roles:1));
  bumped "add_dsd" (fun () ->
      Policy.add_dsd policy
        (Sod.make ~name:"d" ~roles:[ "payer"; "clerk" ] ~max_roles:1))

let test_version_unchanged_on_rejected_ops () =
  let policy = fixture () in
  Policy.add_role policy "payer";
  Policy.add_role policy "approver";
  Policy.add_ssd policy
    (Sod.make ~name:"x" ~roles:[ "payer"; "approver" ] ~max_roles:1);
  Policy.assign_user policy "alice" "payer";
  let v = Policy.version policy in
  (try Policy.assign_user policy "alice" "approver"
   with Policy.Ssd_violation _ -> ());
  Alcotest.(check int) "ssd-rejected assign does not bump" v
    (Policy.version policy);
  (try Policy.assign_user policy "ghost" "payer"
   with Policy.Unknown _ -> ());
  Alcotest.(check int) "unknown-user assign does not bump" v
    (Policy.version policy);
  (try Policy.grant policy "ghost" (p "read" "db@s1")
   with Policy.Unknown _ -> ());
  Alcotest.(check int) "unknown-role grant does not bump" v
    (Policy.version policy);
  (* alice already holds both payer and auditor, so this SSD is a
     retroactive violation and must be rejected *)
  (try
     Policy.add_ssd policy
       (Sod.make ~name:"late" ~roles:[ "payer"; "auditor" ] ~max_roles:1)
   with Invalid_argument _ -> ());
  Alcotest.(check int) "retroactive add_ssd does not bump" v
    (Policy.version policy)

(* Constraint review must report insertion order — Policy_lang renders
   from these accessors, so reversal would break the render/parse
   fixed point the analyzer's round-trip property depends on. *)
let test_constraints_in_insertion_order () =
  let policy = fixture () in
  List.iter (Policy.add_role policy) [ "a"; "b"; "c"; "d" ];
  let c1 = Sod.make ~name:"first" ~roles:[ "a"; "b" ] ~max_roles:1 in
  let c2 = Sod.make ~name:"second" ~roles:[ "c"; "d" ] ~max_roles:1 in
  Policy.add_ssd policy c1;
  Policy.add_ssd policy c2;
  Policy.add_dsd policy c2;
  Policy.add_dsd policy c1;
  Alcotest.(check (list string))
    "ssd in insertion order" [ "first"; "second" ]
    (List.map (fun c -> c.Sod.name) (Policy.ssd_constraints policy));
  Alcotest.(check (list string))
    "dsd in insertion order" [ "second"; "first" ]
    (List.map (fun c -> c.Sod.name) (Policy.dsd_constraints policy))

(* --- sessions --- *)

let test_session_activation () =
  let policy = fixture () in
  let s = Session.create policy ~user:"alice" in
  Alcotest.(check (list string)) "starts empty" [] (Session.active_roles s);
  Session.activate s "auditor";
  (* inherited junior is activatable too *)
  Session.activate s "reader";
  Alcotest.(check (list string)) "both active" [ "auditor"; "reader" ]
    (Session.active_roles s);
  Session.deactivate s "reader";
  Alcotest.(check (list string)) "deactivated" [ "auditor" ]
    (Session.active_roles s);
  Session.drop s;
  Alcotest.(check (list string)) "dropped" [] (Session.active_roles s)

let test_session_not_authorized () =
  let policy = fixture () in
  let s = Session.create policy ~user:"bob" in
  Alcotest.check_raises "bob cannot be auditor"
    (Session.Not_authorized ("bob", "auditor")) (fun () ->
      Session.activate s "auditor")

let test_session_dsd () =
  let policy = fixture () in
  Policy.add_role policy "payer";
  Policy.add_role policy "approver";
  Policy.assign_user policy "alice" "payer";
  Policy.assign_user policy "alice" "approver";
  Policy.add_dsd policy
    (Sod.make ~name:"dyn" ~roles:[ "payer"; "approver" ] ~max_roles:1);
  let s = Session.create policy ~user:"alice" in
  Session.activate s "payer";
  (try
     Session.activate s "approver";
     Alcotest.fail "DSD should block"
   with Session.Dsd_violation (_, "alice", "approver") -> ());
  (* but assignment itself was fine (no SSD) *)
  Session.deactivate s "payer";
  Session.activate s "approver"

let test_session_permissions () =
  let policy = fixture () in
  let s = Session.create policy ~user:"alice" in
  Alcotest.(check bool) "nothing before activation" false
    (Session.may s ~operation:"read" ~target:"db@s1");
  Session.activate s "auditor";
  Alcotest.(check bool) "inherited read" true
    (Session.may s ~operation:"read" ~target:"db@s1");
  Alcotest.(check bool) "own hash" true
    (Session.may s ~operation:"hash" ~target:"m@s3");
  Alcotest.(check bool) "not chief's write" false
    (Session.may s ~operation:"write" ~target:"report@s1")

(* --- engine --- *)

let test_engine_decisions () =
  let policy = fixture () in
  let s = Session.create policy ~user:"alice" in
  Session.activate s "auditor";
  Alcotest.(check bool) "granted" true
    (Engine.is_granted (Engine.decide s ~operation:"read" ~target:"db@s2"));
  (match Engine.decide s ~operation:"write" ~target:"report@s1" with
  | Engine.Denied why ->
      Alcotest.(check bool) "reason mentions user" true
        (String.length why > 0)
  | Engine.Granted -> Alcotest.fail "should deny");
  let access = Sral.Access.read "db" ~at:"s2" in
  Alcotest.(check bool) "decide_access" true
    (Engine.is_granted (Engine.decide_access s access))

(* --- TRBAC baseline --- *)

let qh = Temporal.Q.of_int

let test_trbac_windows () =
  let policy = fixture () in
  let engine = Trbac.create policy in
  Trbac.set_enabling engine ~role:"auditor"
    (Temporal.Periodic.daily ~start_hour:(qh 9) ~length_hours:(qh 8));
  let s = Session.create policy ~user:"alice" in
  Session.activate s "auditor";
  (* inside the window *)
  Alcotest.(check bool) "granted at 10:00" true
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 10) ~operation:"hash" ~target:"m@s1"));
  (* outside the window: the role's privileges are revoked wholesale *)
  Alcotest.(check bool) "denied at 20:00" false
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 20) ~operation:"hash" ~target:"m@s1"));
  (* next day, inside again *)
  Alcotest.(check bool) "granted at 34:00 (10am next day)" true
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 34) ~operation:"hash" ~target:"m@s1"))

let test_trbac_unwindowed_roles_always_enabled () =
  let policy = fixture () in
  let engine = Trbac.create policy in
  let s = Session.create policy ~user:"bob" in
  Session.activate s "reader";
  Alcotest.(check bool) "plain role unaffected" true
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 3) ~operation:"read" ~target:"x@y"))

let test_trbac_disabling_revokes_everything () =
  (* Section 4's criticism: one window per role, so *all* the role's
     permissions disappear together *)
  let policy = fixture () in
  let engine = Trbac.create policy in
  Trbac.set_enabling engine ~role:"auditor"
    (Temporal.Periodic.daily ~start_hour:(qh 9) ~length_hours:(qh 1));
  let s = Session.create policy ~user:"alice" in
  Session.activate s "auditor";
  (* outside the window, both the role's own perm and the inherited
     reader perm are gone (auditor was the only active role) *)
  Alcotest.(check bool) "own perm revoked" false
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 12) ~operation:"hash" ~target:"m@s1"));
  Alcotest.(check bool) "inherited perm revoked too" false
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 12) ~operation:"read" ~target:"m@s1"));
  Trbac.clear_enabling engine ~role:"auditor";
  Alcotest.(check bool) "cleared window re-enables" true
    (Engine.is_granted
       (Trbac.decide engine s ~at:(qh 12) ~operation:"hash" ~target:"m@s1"))

let test_trbac_enabled_roles () =
  let policy = fixture () in
  let engine = Trbac.create policy in
  Trbac.set_enabling engine ~role:"auditor"
    (Temporal.Periodic.daily ~start_hour:(qh 22) ~length_hours:(qh 2));
  let s = Session.create policy ~user:"alice" in
  Session.activate s "auditor";
  Session.activate s "reader";
  Alcotest.(check (list string)) "only reader at noon" [ "reader" ]
    (Trbac.enabled_roles engine s ~at:(qh 12));
  Alcotest.(check (list string)) "both at 23:00" [ "auditor"; "reader" ]
    (Trbac.enabled_roles engine s ~at:(qh 23))

(* --- GTRBAC events and triggers --- *)

let test_gtrbac_events () =
  let policy = fixture () in
  let g = Gtrbac.create policy in
  Gtrbac.post g ~at:(qh 9) (Gtrbac.Enable "auditor");
  Gtrbac.post g ~at:(qh 17) (Gtrbac.Disable "auditor");
  Gtrbac.process g;
  Alcotest.(check bool) "before" false (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 8));
  Alcotest.(check bool) "during" true (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 12));
  Alcotest.(check bool) "after" false (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 18));
  (* un-administered roles are always enabled *)
  Alcotest.(check bool) "plain role" true
    (Gtrbac.is_enabled g ~role:"reader" ~at:(qh 3))

let test_gtrbac_trigger_cascade () =
  let policy = fixture () in
  let g = Gtrbac.create policy in
  (* enabling the chief brings the auditor online 2 hours later, and
     disabling the chief takes the auditor down immediately *)
  Gtrbac.add_trigger g
    { Gtrbac.on = Gtrbac.Enable "chief"; after = qh 2; fire = Gtrbac.Enable "auditor" };
  Gtrbac.add_trigger g
    { Gtrbac.on = Gtrbac.Disable "chief"; after = Temporal.Q.zero;
      fire = Gtrbac.Disable "auditor" };
  Gtrbac.post g ~at:(qh 8) (Gtrbac.Enable "chief");
  Gtrbac.post g ~at:(qh 16) (Gtrbac.Disable "chief");
  Gtrbac.process g;
  Alcotest.(check bool) "auditor not yet at 9" false
    (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 9));
  Alcotest.(check bool) "auditor on at 10" true
    (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 10));
  Alcotest.(check bool) "auditor off with chief at 16" false
    (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 16))

let test_gtrbac_cycle_guard () =
  let policy = fixture () in
  let g = Gtrbac.create ~cascade_limit:50 policy in
  Gtrbac.add_trigger g
    { Gtrbac.on = Gtrbac.Enable "auditor"; after = Temporal.Q.one;
      fire = Gtrbac.Disable "auditor" };
  Gtrbac.add_trigger g
    { Gtrbac.on = Gtrbac.Disable "auditor"; after = Temporal.Q.one;
      fire = Gtrbac.Enable "auditor" };
  Gtrbac.post g ~at:Temporal.Q.zero (Gtrbac.Enable "auditor");
  Alcotest.check_raises "trigger loop detected" Gtrbac.Cascade_limit (fun () ->
      Gtrbac.process g)

let test_gtrbac_decide () =
  let policy = fixture () in
  let g = Gtrbac.create policy in
  Gtrbac.post g ~at:(qh 9) (Gtrbac.Enable "auditor");
  Gtrbac.post g ~at:(qh 17) (Gtrbac.Disable "auditor");
  let s = Session.create policy ~user:"alice" in
  Session.activate s "auditor";
  Alcotest.(check bool) "granted in window" true
    (Engine.is_granted
       (Gtrbac.decide g s ~at:(qh 10) ~operation:"hash" ~target:"m@s1"));
  Alcotest.(check bool) "denied outside" false
    (Engine.is_granted
       (Gtrbac.decide g s ~at:(qh 20) ~operation:"hash" ~target:"m@s1"))

let test_gtrbac_incremental_posting () =
  let policy = fixture () in
  let g = Gtrbac.create policy in
  Gtrbac.post g ~at:(qh 1) (Gtrbac.Enable "auditor");
  Gtrbac.process g;
  Alcotest.(check bool) "first batch" true
    (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 2));
  (* post more events after processing: they extend the history *)
  Gtrbac.post g ~at:(qh 5) (Gtrbac.Disable "auditor");
  Gtrbac.process g;
  Alcotest.(check bool) "second batch applied" false
    (Gtrbac.is_enabled g ~role:"auditor" ~at:(qh 6))

let () =
  Alcotest.run "rbac"
    [
      ( "perm",
        [
          Alcotest.test_case "exact" `Quick test_perm_matches_exact;
          Alcotest.test_case "wildcards" `Quick test_perm_wildcards;
          Alcotest.test_case "string roundtrip" `Quick
            test_perm_string_roundtrip;
          Alcotest.test_case "overlaps" `Quick test_perm_overlaps;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "inheritance" `Quick test_hierarchy_inheritance;
          Alcotest.test_case "cycle rejected" `Quick
            test_hierarchy_cycle_rejected;
        ] );
      ( "policy",
        [
          Alcotest.test_case "review" `Quick test_policy_review;
          Alcotest.test_case "unknown" `Quick test_policy_unknown;
          Alcotest.test_case "deassign/revoke" `Quick
            test_policy_deassign_revoke;
        ] );
      ( "sod",
        [
          Alcotest.test_case "ssd blocks" `Quick test_ssd;
          Alcotest.test_case "retroactive" `Quick test_ssd_retroactive_rejected;
          Alcotest.test_case "validation" `Quick test_sod_validation;
        ] );
      ( "version",
        [
          Alcotest.test_case "every admin op bumps" `Quick
            test_version_monotone_across_admin_ops;
          Alcotest.test_case "rejected ops do not bump" `Quick
            test_version_unchanged_on_rejected_ops;
          Alcotest.test_case "constraints in insertion order" `Quick
            test_constraints_in_insertion_order;
        ] );
      ( "session",
        [
          Alcotest.test_case "activation" `Quick test_session_activation;
          Alcotest.test_case "not authorized" `Quick test_session_not_authorized;
          Alcotest.test_case "dsd" `Quick test_session_dsd;
          Alcotest.test_case "permissions" `Quick test_session_permissions;
        ] );
      ("engine", [ Alcotest.test_case "decisions" `Quick test_engine_decisions ]);
      ( "gtrbac",
        [
          Alcotest.test_case "events" `Quick test_gtrbac_events;
          Alcotest.test_case "trigger cascade" `Quick
            test_gtrbac_trigger_cascade;
          Alcotest.test_case "cycle guard" `Quick test_gtrbac_cycle_guard;
          Alcotest.test_case "decide" `Quick test_gtrbac_decide;
          Alcotest.test_case "incremental posting" `Quick
            test_gtrbac_incremental_posting;
        ] );
      ( "trbac",
        [
          Alcotest.test_case "windows" `Quick test_trbac_windows;
          Alcotest.test_case "unwindowed always enabled" `Quick
            test_trbac_unwindowed_roles_always_enabled;
          Alcotest.test_case "disabling revokes everything" `Quick
            test_trbac_disabling_revokes_everything;
          Alcotest.test_case "enabled roles" `Quick test_trbac_enabled_roles;
        ] );
    ]
