(* Tests for the SRAL language: lexer, parser, printer, expressions,
   program analyses and the extensional trace-model operators. *)

open Sral

let parse = Parser.program

let check_trace_set msg expected set =
  let actual =
    List.sort String.compare
      (List.map Trace.to_string (Trace_ops.to_list set))
  in
  let expected =
    List.sort String.compare (List.map Trace.to_string expected)
  in
  Alcotest.(check (list string)) msg expected actual

let acc op r s = Access.make ~op ~resource:r ~server:s
let read_ r s = acc Access.Read r s
let write_ r s = acc Access.Write r s

(* --- lexer --- *)

let test_lexer_basic () =
  let tokens = Lexer.tokenize "read db @ s1 ; x := 1 + 2" in
  Alcotest.(check int) "token count" 11 (List.length tokens);
  Alcotest.(check bool) "ends with EOF" true
    (List.nth tokens 10 = Lexer.EOF)

let test_lexer_comment () =
  let tokens = Lexer.tokenize "skip # a comment\n; skip" in
  Alcotest.(check int) "comment stripped" 4 (List.length tokens)

let test_lexer_operators () =
  let tokens = Lexer.tokenize "<= >= == != && || := ? !" in
  Alcotest.(check int) "all operators plus EOF" 10 (List.length tokens)

let test_lexer_error () =
  Alcotest.check_raises "bad char"
    (Lexer.Lex_error ("unexpected character '$'", 0))
    (fun () -> ignore (Lexer.tokenize "$"))

(* --- parser --- *)

let test_parse_access () =
  match parse "read db @ s1" with
  | Ast.Access a ->
      Alcotest.(check string) "resource" "db" a.Access.resource;
      Alcotest.(check string) "server" "s1" a.Access.server
  | _ -> Alcotest.fail "expected a single access"

let test_parse_custom_op () =
  match parse "op(hash) m1 @ s2" with
  | Ast.Access a ->
      Alcotest.(check string) "op" "hash" (Access.operation_name a.Access.op)
  | _ -> Alcotest.fail "expected a custom access"

let test_parse_custom_op_bare () =
  (* a bare identifier is also accepted as a custom operation *)
  match parse "hash m1 @ s2" with
  | Ast.Access a ->
      Alcotest.(check string) "op" "hash" (Access.operation_name a.Access.op)
  | _ -> Alcotest.fail "expected a custom access"

let test_parse_seq_right_assoc () =
  match parse "skip; skip; skip" with
  | Ast.Seq (Ast.Skip, Ast.Seq (Ast.Skip, Ast.Skip)) -> ()
  | _ -> Alcotest.fail "seq should be right-nested"

let test_parse_par_vs_seq () =
  (* '||' binds tighter than ';' *)
  match parse "read a @ s; skip || skip" with
  | Ast.Seq (Ast.Access _, Ast.Par (Ast.Skip, Ast.Skip)) -> ()
  | _ -> Alcotest.fail "expected seq of access and par"

let test_parse_if_while () =
  match parse "if x > 0 then { skip } else { skip }; while y < 3 do { skip }" with
  | Ast.Seq (Ast.If _, Ast.While _) -> ()
  | _ -> Alcotest.fail "expected if then while"

let test_parse_channels () =
  match parse "ch ? x; ch ! x + 1; signal(done_); wait(done_)" with
  | Ast.Seq (Ast.Recv ("ch", "x"), Ast.Seq (Ast.Send ("ch", _), Ast.Seq (Ast.Signal "done_", Ast.Wait "done_"))) ->
      ()
  | _ -> Alcotest.fail "expected channel program"

let test_parse_errors () =
  List.iter
    (fun src ->
      match parse src with
      | exception Parser.Parse_error _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should not parse" src))
    [
      "read db";          (* missing @ server *)
      "if x then { skip }";  (* missing else *)
      "while do { skip }";   (* missing condition *)
      "skip skip";           (* missing separator *)
      "ch !";                (* missing payload *)
      "{ skip";              (* unclosed brace *)
      "";                    (* empty input *)
    ]

let test_parse_expr () =
  let e = Parser.expr "1 + 2 * 3 == 7 && !false" in
  Alcotest.(check bool) "evaluates true" true (Expr.eval_bool Env.empty e)

let test_expr_precedence () =
  let e = Parser.expr "2 + 3 * 4" in
  Alcotest.(check bool) "mul binds tighter" true
    (Value.equal (Expr.eval Env.empty e) (Value.Int 14))

let test_expr_or_keyword () =
  let e = Parser.expr "false or true" in
  Alcotest.(check bool) "or keyword" true (Expr.eval_bool Env.empty e)

(* --- pretty / roundtrip --- *)

let test_roundtrip_cases () =
  List.iter
    (fun src ->
      let p = parse src in
      let p2 = parse (Pretty.to_string p) in
      Alcotest.(check bool) (Printf.sprintf "roundtrip %S" src) true
        (Ast.equal p p2))
    [
      "read db @ s1";
      "read a @ s1; write b @ s2";
      "if x > 0 then { read a @ s1 } else { write b @ s2 }";
      "i := 0; while i < 3 do { read a @ s1; i := i + 1 }";
      "{ read a @ s1 || write b @ s2 }; execute c @ s3";
      "ch ? x; ch ! x * 2; signal(sync); wait(sync)";
      "op(hash) m @ s1; { skip || { skip || skip } }";
      "x := 1 + 2 * 3; if x == 7 or x > 10 then { skip } else { skip }";
    ]

let roundtrip_prop =
  QCheck.Test.make ~name:"pretty/parse roundtrip (random programs)"
    ~count:200
    (QCheck.make (fun rng ->
         Generate.program ~allow_io:true ~resources:[ "r1"; "r2" ]
           ~servers:[ "s1"; "s2" ] ~size:12 rng))
    (fun p ->
      let printed = Pretty.to_string p in
      match parse printed with
      | p2 -> Ast.equal p p2
      | exception Parser.Parse_error msg ->
          QCheck.Test.fail_reportf "failed to reparse %S: %s" printed msg)

(* --- expressions --- *)

let test_expr_eval_errors () =
  let check_err name e =
    match Expr.eval Env.empty e with
    | exception Expr.Eval_error _ -> ()
    | _ -> Alcotest.fail (name ^ " should raise")
  in
  check_err "unbound var" (Expr.Var "nope");
  check_err "div by zero" (Expr.Binop (Expr.Div, Expr.Int 1, Expr.Int 0));
  check_err "mod by zero" (Expr.Binop (Expr.Mod, Expr.Int 1, Expr.Int 0));
  check_err "neg of bool" (Expr.Neg (Expr.Bool true));
  check_err "plus on bool" (Expr.Binop (Expr.Add, Expr.Bool true, Expr.Int 1))

let test_expr_short_circuit () =
  (* the right operand would raise, but must not be evaluated *)
  let div0 = Expr.Binop (Expr.Div, Expr.Int 1, Expr.Int 0) in
  let e1 = Expr.Binop (Expr.And, Expr.Bool false, div0) in
  let e2 = Expr.Binop (Expr.Or, Expr.Bool true, div0) in
  Alcotest.(check bool) "false && _" false (Expr.eval_bool Env.empty e1);
  Alcotest.(check bool) "true or _" true (Expr.eval_bool Env.empty e2)

let test_expr_free_vars () =
  let e = Parser.expr "x + y * x - z" in
  Alcotest.(check (list string)) "free vars" [ "x"; "y"; "z" ]
    (Expr.free_vars e)

(* --- program analyses --- *)

let prog1 =
  parse
    "read a @ s1; if x > 0 then { write b @ s2 } else { read a @ s1 }; ch ? y; signal(ev)"

let test_program_size () =
  Alcotest.(check bool) "size positive" true (Program.size prog1 > 5)

let test_program_accesses () =
  Alcotest.(check int) "distinct accesses" 2
    (List.length (Program.accesses prog1));
  Alcotest.(check int) "occurrences" 3 (Program.access_count prog1)

let test_program_servers_resources () =
  Alcotest.(check (list string)) "servers" [ "s1"; "s2" ]
    (Program.servers prog1);
  Alcotest.(check (list string)) "resources" [ "a"; "b" ]
    (Program.resources prog1)

let test_program_channels_signals () =
  Alcotest.(check (list string)) "channels" [ "ch" ] (Program.channels prog1);
  Alcotest.(check (list string)) "signals" [ "ev" ] (Program.signals prog1)

let test_program_flags () =
  Alcotest.(check bool) "no par" false (Program.has_par prog1);
  Alcotest.(check bool) "no loop" false (Program.has_loop prog1);
  let p = parse "while c do { skip || skip }" in
  Alcotest.(check bool) "has par" true (Program.has_par p);
  Alcotest.(check bool) "has loop" true (Program.has_loop p)

let test_normalize () =
  let p = Ast.Seq (Ast.Skip, Ast.Seq (Ast.Access (read_ "a" "s1"), Ast.Skip)) in
  Alcotest.(check bool) "skips removed" true
    (Ast.equal (Program.normalize p) (Ast.Access (read_ "a" "s1")))

let normalize_preserves_traces =
  QCheck.Test.make ~name:"normalize preserves the trace model" ~count:100
    (QCheck.make (fun rng ->
         Generate.program ~resources:[ "r" ] ~servers:[ "s" ] ~size:8 rng))
    (fun p ->
      let t1 = Trace_ops.traces_bounded ~loop_bound:2 p in
      let t2 = Trace_ops.traces_bounded ~loop_bound:2 (Program.normalize p) in
      Trace_ops.Trace_set.equal t1 t2)

(* --- trace operators --- *)

let a1 = read_ "a" "s1"
let a2 = write_ "b" "s2"
let a3 = read_ "c" "s3"

let test_trace_basic () =
  let t = [ a1; a2; a1 ] in
  Alcotest.(check int) "length" 3 (Trace.length t);
  Alcotest.(check bool) "mem" true (Trace.mem a2 t);
  Alcotest.(check bool) "not mem" false (Trace.mem a3 t);
  Alcotest.(check (list int)) "positions" [ 0; 2 ] (Trace.positions a1 t);
  Alcotest.(check int) "count" 2
    (Trace.count (fun a -> Access.equal a a1) t)

let test_concat () =
  let m1 = Trace_ops.of_list [ [ a1 ] ] in
  let m2 = Trace_ops.of_list [ [ a2 ]; [ a3 ] ] in
  check_trace_set "pointwise concat" [ [ a1; a2 ]; [ a1; a3 ] ]
    (Trace_ops.concat m1 m2)

let test_interleave_counts () =
  (* |interleave t v| = C(|t|+|v|, |t|) for traces with distinct symbols *)
  let t = [ a1; a2 ] in
  let v = [ a3 ] in
  Alcotest.(check int) "C(3,1)" 3
    (List.length (Trace_ops.to_list (Trace_ops.interleave_traces t v)));
  let v2 = [ a3; read_ "d" "s4" ] in
  Alcotest.(check int) "C(4,2)" 6
    (List.length (Trace_ops.to_list (Trace_ops.interleave_traces t v2)))

let test_interleave_preserves_order () =
  let results = Trace_ops.to_list (Trace_ops.interleave_traces [ a1; a2 ] [ a3 ]) in
  List.iter
    (fun t ->
      let p1 = List.hd (Trace.positions a1 t) in
      let p2 = List.hd (Trace.positions a2 t) in
      Alcotest.(check bool) "a1 before a2" true (p1 < p2))
    results

let test_interleave_empty () =
  check_trace_set "eps # t = {t}" [ [ a1 ] ]
    (Trace_ops.interleave_traces [] [ a1 ])

let test_kleene () =
  let m = Trace_ops.of_list [ [ a1 ] ] in
  let closure = Trace_ops.kleene ~bound:3 m in
  check_trace_set "a* up to 3"
    [ []; [ a1 ]; [ a1; a1 ]; [ a1; a1; a1 ] ]
    closure

let test_kleene_fixpoint () =
  (* kleene of {eps} converges immediately *)
  let m = Trace_ops.of_list [ [] ] in
  check_trace_set "eps* = {eps}" [ [] ] (Trace_ops.kleene ~bound:10 m)

let test_traces_bounded_if () =
  let p = parse "if c then { read a @ s1 } else { write b @ s2 }" in
  check_trace_set "union of branches" [ [ a1 ]; [ a2 ] ]
    (Trace_ops.traces_bounded ~loop_bound:2 p)

let test_traces_bounded_par () =
  let p = parse "{ read a @ s1 || write b @ s2 }" in
  check_trace_set "interleavings" [ [ a1; a2 ]; [ a2; a1 ] ]
    (Trace_ops.traces_bounded ~loop_bound:2 p)

let test_traces_bounded_io_invisible () =
  let p = parse "ch ? x; signal(e); read a @ s1" in
  check_trace_set "io is trace-invisible" [ [ a1 ] ]
    (Trace_ops.traces_bounded ~loop_bound:2 p)

let test_server_flow () =
  let p = parse "read a @ s1; read b @ s2; read c @ s2" in
  Alcotest.(check (list (pair string string))) "linear" [ ("s1", "s2") ]
    (Program.server_flow p);
  let p2 = parse "read a @ s1; if c then { read b @ s2 } else { read c @ s3 }" in
  Alcotest.(check (list (pair string string))) "branching"
    [ ("s1", "s2"); ("s1", "s3") ]
    (Program.server_flow p2);
  (* the loop closes the cycle s1 -> s2 -> s1 *)
  let p3 = parse "while c do { read a @ s1; read b @ s2 }" in
  Alcotest.(check (list (pair string string))) "loop back edge"
    [ ("s1", "s2"); ("s2", "s1") ]
    (Program.server_flow p3);
  (* interleaving crosses branches both ways *)
  let p4 = parse "{ read a @ s1 || read b @ s2 }" in
  Alcotest.(check (list (pair string string))) "par"
    [ ("s1", "s2"); ("s2", "s1") ]
    (Program.server_flow p4);
  Alcotest.(check (list (pair string string))) "single server" []
    (Program.server_flow (parse "read a @ s1; read b @ s1"))

(* --- big-step evaluator --- *)

let test_eval_sequence () =
  match Eval.run (parse "read a @ s1; x := 2; if x > 1 then { write b @ s2 } else { skip }") with
  | Ok { trace; env } ->
      Alcotest.(check int) "two accesses" 2 (Trace.length trace);
      Alcotest.(check bool) "env updated" true
        (Env.find env "x" = Some (Value.Int 2))
  | Error e -> Alcotest.fail (Format.asprintf "%a" Eval.pp_error e)

let test_eval_loop () =
  match Eval.run (parse "i := 0; while i < 5 do { read a @ s1; i := i + 1 }") with
  | Ok { trace; _ } -> Alcotest.(check int) "five accesses" 5 (Trace.length trace)
  | Error e -> Alcotest.fail (Format.asprintf "%a" Eval.pp_error e)

let test_eval_errors () =
  (match Eval.run (parse "ch ? x") with
  | Error (Eval.Unsupported _) -> ()
  | _ -> Alcotest.fail "recv should be unsupported");
  (match Eval.run (parse "while true do { skip }") with
  | Error Eval.Out_of_fuel -> ()
  | _ -> Alcotest.fail "divergence should exhaust fuel");
  match Eval.run (parse "if zz > 0 then { skip } else { skip }") with
  | Error (Eval.Eval_error _) -> ()
  | _ -> Alcotest.fail "unbound variable should fail"

let eval_trace_in_trace_model =
  QCheck.Test.make
    ~name:"big-step trace is in the symbolic trace model (par-free)"
    ~count:150
    (QCheck.make (fun rng ->
         Generate.program ~allow_par:false ~resources:[ "a"; "b" ]
           ~servers:[ "s1"; "s2" ] ~size:8 rng))
    (fun p ->
      match Eval.trace_of p with
      | None -> QCheck.assume_fail ()
      | Some trace ->
          (* membership in the program's regular trace model — checked
             on the DFA, so nested loops cost nothing *)
          Automata.Language.contains (Automata.Language.of_program p) trace)

(* --- access --- *)

let test_access_compare_total () =
  let all = [ a1; a2; a3; acc (Access.Custom "hash") "a" "s1" ] in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          let c1 = Access.compare x y and c2 = Access.compare y x in
          Alcotest.(check bool) "antisymmetric" true (compare c1 0 = compare 0 c2))
        all)
    all

let test_access_operation_roundtrip () =
  List.iter
    (fun op ->
      Alcotest.(check bool) "name roundtrip" true
        (Access.operation_of_name (Access.operation_name op) = op))
    [ Access.Read; Access.Write; Access.Execute; Access.Custom "hash" ]

let () =
  Alcotest.run "sral"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "comment" `Quick test_lexer_comment;
          Alcotest.test_case "operators" `Quick test_lexer_operators;
          Alcotest.test_case "error" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "access" `Quick test_parse_access;
          Alcotest.test_case "custom op" `Quick test_parse_custom_op;
          Alcotest.test_case "bare custom op" `Quick test_parse_custom_op_bare;
          Alcotest.test_case "seq right assoc" `Quick test_parse_seq_right_assoc;
          Alcotest.test_case "par vs seq" `Quick test_parse_par_vs_seq;
          Alcotest.test_case "if/while" `Quick test_parse_if_while;
          Alcotest.test_case "channels" `Quick test_parse_channels;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "expr" `Quick test_parse_expr;
          Alcotest.test_case "expr precedence" `Quick test_expr_precedence;
          Alcotest.test_case "or keyword" `Quick test_expr_or_keyword;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip cases" `Quick test_roundtrip_cases;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "expr",
        [
          Alcotest.test_case "eval errors" `Quick test_expr_eval_errors;
          Alcotest.test_case "short circuit" `Quick test_expr_short_circuit;
          Alcotest.test_case "free vars" `Quick test_expr_free_vars;
        ] );
      ( "program",
        [
          Alcotest.test_case "size" `Quick test_program_size;
          Alcotest.test_case "accesses" `Quick test_program_accesses;
          Alcotest.test_case "servers/resources" `Quick
            test_program_servers_resources;
          Alcotest.test_case "channels/signals" `Quick
            test_program_channels_signals;
          Alcotest.test_case "flags" `Quick test_program_flags;
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "server flow" `Quick test_server_flow;
          QCheck_alcotest.to_alcotest normalize_preserves_traces;
        ] );
      ( "traces",
        [
          Alcotest.test_case "basics" `Quick test_trace_basic;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "interleave counts" `Quick test_interleave_counts;
          Alcotest.test_case "interleave order" `Quick
            test_interleave_preserves_order;
          Alcotest.test_case "interleave empty" `Quick test_interleave_empty;
          Alcotest.test_case "kleene" `Quick test_kleene;
          Alcotest.test_case "kleene fixpoint" `Quick test_kleene_fixpoint;
          Alcotest.test_case "traces of if" `Quick test_traces_bounded_if;
          Alcotest.test_case "traces of par" `Quick test_traces_bounded_par;
          Alcotest.test_case "io invisible" `Quick
            test_traces_bounded_io_invisible;
        ] );
      ( "eval",
        [
          Alcotest.test_case "sequence" `Quick test_eval_sequence;
          Alcotest.test_case "loop" `Quick test_eval_loop;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          QCheck_alcotest.to_alcotest eval_trace_in_trace_model;
        ] );
      ( "access",
        [
          Alcotest.test_case "compare total" `Quick test_access_compare_total;
          Alcotest.test_case "operation roundtrip" `Quick
            test_access_operation_roundtrip;
        ] );
    ]
