(* Tests for the automata library: regexes (derivatives), NFAs
   (Thompson + shuffle), DFAs (determinization, minimization, boolean
   algebra) and the Theorem 3.1 constructive translations. *)

let acc r s = Sral.Access.read r ~at:s
let a0 = acc "a" "s1"
let a1 = acc "b" "s1"
let a2 = acc "c" "s2"

let table () = Automata.Symbol.of_accesses [ a0; a1; a2 ]

let sigma tbl = Automata.Symbol.alphabet tbl

open Automata

(* --- symbols --- *)

let test_symbol_interning () =
  let tbl = Symbol.create () in
  let s1 = Symbol.intern tbl a0 in
  let s2 = Symbol.intern tbl a1 in
  let s3 = Symbol.intern tbl a0 in
  Alcotest.(check int) "same access same symbol" s1 s3;
  Alcotest.(check bool) "distinct" true (s1 <> s2);
  Alcotest.(check int) "size" 2 (Symbol.size tbl);
  Alcotest.(check bool) "roundtrip" true
    (Sral.Access.equal (Symbol.access tbl s1) a0)

let test_symbol_growth () =
  let tbl = Symbol.create () in
  for i = 0 to 99 do
    ignore (Symbol.intern tbl (acc (string_of_int i) "s"))
  done;
  Alcotest.(check int) "100 symbols" 100 (Symbol.size tbl);
  Alcotest.(check string) "backing intact" "37"
    (Symbol.access tbl 37).Sral.Access.resource

(* --- regex --- *)

let test_regex_smart_constructors () =
  Alcotest.(check bool) "cat with empty" true
    (Regex.cat Regex.Empty (Regex.sym 0) = Regex.Empty);
  Alcotest.(check bool) "cat with eps" true
    (Regex.cat Regex.Eps (Regex.sym 0) = Regex.Sym 0);
  Alcotest.(check bool) "alt with empty" true
    (Regex.alt Regex.Empty (Regex.sym 0) = Regex.Sym 0);
  Alcotest.(check bool) "star of eps" true (Regex.star Regex.Eps = Regex.Eps);
  Alcotest.(check bool) "star of star" true
    (Regex.star (Regex.star (Regex.sym 0)) = Regex.star (Regex.sym 0))

let test_regex_nullable () =
  Alcotest.(check bool) "eps nullable" true (Regex.nullable Regex.Eps);
  Alcotest.(check bool) "sym not" false (Regex.nullable (Regex.sym 0));
  Alcotest.(check bool) "star nullable" true
    (Regex.nullable (Regex.star (Regex.sym 0)));
  Alcotest.(check bool) "cat" false
    (Regex.nullable (Regex.Cat (Regex.Eps, Regex.Sym 0)))

let test_regex_matches () =
  (* (0 1)* + 2 *)
  let r =
    Regex.alt
      (Regex.star (Regex.cat (Regex.sym 0) (Regex.sym 1)))
      (Regex.sym 2)
  in
  Alcotest.(check bool) "eps" true (Regex.matches r []);
  Alcotest.(check bool) "01" true (Regex.matches r [ 0; 1 ]);
  Alcotest.(check bool) "0101" true (Regex.matches r [ 0; 1; 0; 1 ]);
  Alcotest.(check bool) "2" true (Regex.matches r [ 2 ]);
  Alcotest.(check bool) "0" false (Regex.matches r [ 0 ]);
  Alcotest.(check bool) "010" false (Regex.matches r [ 0; 1; 0 ])

(* Brzozowski derivatives agree with the compiled DFA's transition
   function symbol by symbol: walking a word through [Regex.derivative]
   and through the subset-constructed DFA must give residuals that agree
   on nullability (state finality) and on residual-language emptiness
   (final-state reachability) after *every* step, not just at the end.
   This is the eager half of the lazy-derivative decision path's
   correctness argument.  Failures shrink to a minimal failing
   subregex. *)
let regex_subterms = function
  | Regex.Empty | Regex.Eps | Regex.Sym _ -> []
  | Regex.Alt (a, b) | Regex.Cat (a, b) -> [ a; b ]
  | Regex.Star a -> [ a ]

let test_derivative_matches_dfa_stepwise () =
  let alphabet = [ 0; 1; 2 ] in
  Gen.each_seed ~salt:911 ~count:300 (fun ~seed rng ->
      let re = Regex.generate ~symbols:alphabet ~size:8 rng in
      let words =
        List.init 12 (fun _ ->
            List.init (Random.State.int rng 7) (fun _ -> Random.State.int rng 3))
      in
      let agrees re =
        let d = Dfa.of_nfa ~alphabet (Nfa.of_regex re) in
        let sym_index s =
          let rec find i =
            if i >= Array.length d.Dfa.alphabet then None
            else if d.Dfa.alphabet.(i) = s then Some i
            else find (i + 1)
          in
          find 0
        in
        let step_agrees (r, q) s =
          let r' = Regex.derivative s r in
          match sym_index s with
          | None -> None
          | Some i ->
              let q' = d.Dfa.next.(q).(i) in
              if
                Regex.nullable r' = d.Dfa.finals.(q')
                && Regex.is_empty_lang r' = not (Dfa.final_reachable_from d q')
              then Some (r', q')
              else None
        in
        List.for_all
          (fun w ->
            let rec walk st = function
              | [] -> true
              | s :: rest -> (
                  match step_agrees st s with
                  | None -> false
                  | Some st' -> walk st' rest)
            in
            walk (re, d.Dfa.start) w)
          words
      in
      if not (agrees re) then begin
        let small =
          Gen.shrink
            ~fails:(fun re -> not (agrees re))
            ~candidates:regex_subterms re
        in
        Gen.report_minimized ~seed ~what:"regex" Regex.pp small;
        Alcotest.failf "seed %d: derivative and DFA transition diverge" seed
      end)

(* --- NFA --- *)

let test_nfa_combinators () =
  let n = Nfa.cat (Nfa.sym 0) (Nfa.alt (Nfa.sym 1) (Nfa.sym 2)) in
  Alcotest.(check bool) "01" true (Nfa.accepts n [ 0; 1 ]);
  Alcotest.(check bool) "02" true (Nfa.accepts n [ 0; 2 ]);
  Alcotest.(check bool) "0" false (Nfa.accepts n [ 0 ]);
  Alcotest.(check bool) "12" false (Nfa.accepts n [ 1; 2 ])

let test_nfa_star () =
  let n = Nfa.star (Nfa.sym 0) in
  Alcotest.(check bool) "eps" true (Nfa.accepts n []);
  Alcotest.(check bool) "000" true (Nfa.accepts n [ 0; 0; 0 ]);
  Alcotest.(check bool) "01" false (Nfa.accepts n [ 0; 1 ])

let test_nfa_shuffle () =
  let n = Nfa.shuffle (Nfa.cat (Nfa.sym 0) (Nfa.sym 1)) (Nfa.sym 2) in
  List.iter
    (fun w -> Alcotest.(check bool) "interleaving" true (Nfa.accepts n w))
    [ [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 2; 0; 1 ] ];
  List.iter
    (fun w -> Alcotest.(check bool) "non-interleaving" false (Nfa.accepts n w))
    [ [ 1; 0; 2 ]; [ 0; 1 ]; [ 2 ]; [ 0; 1; 2; 2 ] ]

let nfa_matches_regex =
  QCheck.Test.make ~name:"Thompson NFA agrees with derivatives" ~count:200
    (QCheck.make (fun rng ->
         let re = Regex.generate ~symbols:[ 0; 1; 2 ] ~size:8 rng in
         let words =
           List.init 20 (fun _ ->
               List.init (Random.State.int rng 6) (fun _ ->
                   Random.State.int rng 3))
         in
         (re, words)))
    (fun (re, words) ->
      let nfa = Nfa.of_regex re in
      List.for_all
        (fun w -> Nfa.accepts nfa w = Regex.matches re w)
        words)

(* --- DFA --- *)

let dfa_of_regex ?(alphabet = [ 0; 1; 2 ]) re =
  Dfa.of_nfa ~alphabet (Nfa.of_regex re)

let test_dfa_subset_construction () =
  let re = Regex.cat (Regex.star (Regex.sym 0)) (Regex.sym 1) in
  let d = dfa_of_regex re in
  Alcotest.(check bool) "001" true (Dfa.accepts d [ 0; 0; 1 ]);
  Alcotest.(check bool) "1" true (Dfa.accepts d [ 1 ]);
  Alcotest.(check bool) "10" false (Dfa.accepts d [ 1; 0 ]);
  Alcotest.(check bool) "unknown symbol rejected" false (Dfa.accepts d [ 9 ])

let test_dfa_minimize_size () =
  (* (0+1)* 0 (0+1) has a 4-state minimal DFA over {0,1} *)
  let any = Regex.alt (Regex.sym 0) (Regex.sym 1) in
  let re = Regex.cat_list [ Regex.star any; Regex.sym 0; any ] in
  let d = Dfa.minimize (dfa_of_regex ~alphabet:[ 0; 1 ] re) in
  Alcotest.(check int) "minimal state count" 4 (Dfa.num_states d)

let minimize_preserves_language =
  QCheck.Test.make ~name:"minimize preserves the language" ~count:150
    (QCheck.make (fun rng ->
         let re = Regex.generate ~symbols:[ 0; 1 ] ~size:8 rng in
         let words =
           List.init 25 (fun _ ->
               List.init (Random.State.int rng 7) (fun _ ->
                   Random.State.int rng 2))
         in
         (re, words)))
    (fun (re, words) ->
      let d = dfa_of_regex ~alphabet:[ 0; 1 ] re in
      let m = Dfa.minimize d in
      List.for_all (fun w -> Dfa.accepts d w = Dfa.accepts m w) words
      && Dfa.num_states m <= Dfa.num_states d)

let test_dfa_boolean_algebra () =
  let any = Regex.alt (Regex.alt (Regex.sym 0) (Regex.sym 1)) (Regex.sym 2) in
  let d0 = dfa_of_regex (Regex.cat (Regex.sym 0) (Regex.star any)) in
  let d1 = dfa_of_regex (Regex.cat (Regex.star any) (Regex.sym 1)) in
  let both = Dfa.inter d0 d1 in
  Alcotest.(check bool) "starts 0 ends 1" true (Dfa.accepts both [ 0; 2; 1 ]);
  Alcotest.(check bool) "starts 1" false (Dfa.accepts both [ 1; 1 ]);
  let either = Dfa.union d0 d1 in
  Alcotest.(check bool) "ends 1 only" true (Dfa.accepts either [ 1 ]);
  let neither = Dfa.complement either in
  Alcotest.(check bool) "complement" true (Dfa.accepts neither [ 2 ]);
  Alcotest.(check bool) "complement 2" false (Dfa.accepts neither [ 0 ])

let test_dfa_emptiness_witness () =
  let d = dfa_of_regex (Regex.cat (Regex.sym 0) (Regex.sym 1)) in
  Alcotest.(check bool) "non-empty" false (Dfa.is_empty d);
  Alcotest.(check (option (list int))) "witness" (Some [ 0; 1 ])
    (Dfa.shortest_witness d);
  let empty = Dfa.inter d (Dfa.complement d) in
  Alcotest.(check bool) "L ∩ ¬L empty" true (Dfa.is_empty empty);
  Alcotest.(check (option (list int))) "no witness" None
    (Dfa.shortest_witness empty)

let test_dfa_equiv_subset () =
  let star01 = Regex.star (Regex.alt (Regex.sym 0) (Regex.sym 1)) in
  let d_all = dfa_of_regex ~alphabet:[ 0; 1 ] star01 in
  let d_univ = Dfa.universal_lang ~alphabet:[ 0; 1 ] in
  Alcotest.(check bool) "(0+1)* = universal" true (Dfa.equiv d_all d_univ);
  let d_0star = dfa_of_regex ~alphabet:[ 0; 1 ] (Regex.star (Regex.sym 0)) in
  Alcotest.(check bool) "0* subset (0+1)*" true (Dfa.subset d_0star d_all);
  Alcotest.(check bool) "(0+1)* not subset 0*" false (Dfa.subset d_all d_0star)

let test_dfa_run_residual () =
  let re = Regex.cat (Regex.sym 0) (Regex.cat (Regex.sym 1) (Regex.sym 2)) in
  let d = dfa_of_regex re in
  (match Dfa.run d [ 0; 1 ] with
  | Some q ->
      Alcotest.(check bool) "residual non-empty" true
        (Dfa.final_reachable_from d q)
  | None -> Alcotest.fail "run failed");
  (match Dfa.run d [ 1 ] with
  | Some q ->
      Alcotest.(check bool) "dead after wrong start" false
        (Dfa.final_reachable_from d q)
  | None -> Alcotest.fail "run failed");
  Alcotest.(check (option int)) "unknown symbol" None (Dfa.run d [ 42 ])

let test_dfa_of_tables_validation () =
  Alcotest.check_raises "bad target"
    (Invalid_argument "Dfa.of_tables: inconsistent tables") (fun () ->
      ignore
        (Dfa.of_tables ~alphabet:[ 0 ] ~start:0 ~finals:[| true |]
           ~next:[| [| 5 |] |]))

(* --- program <-> automata (Theorem 3.1 machinery) --- *)

let lang_of_program p = Language.of_program p

let test_of_program_if_union () =
  let p = Sral.Parser.program "if c then { read a @ s1 } else { read b @ s1 }" in
  let l = lang_of_program p in
  Alcotest.(check bool) "branch 1" true (Language.contains l [ a0 ]);
  Alcotest.(check bool) "branch 2" true (Language.contains l [ a1 ]);
  Alcotest.(check bool) "not both" false (Language.contains l [ a0; a1 ])

let test_of_program_loop () =
  let p = Sral.Parser.program "while c do { read a @ s1 }" in
  let l = lang_of_program p in
  Alcotest.(check bool) "zero" true (Language.contains l []);
  Alcotest.(check bool) "five" true
    (Language.contains l [ a0; a0; a0; a0; a0 ])

let test_of_program_par () =
  let p = Sral.Parser.program "{ read a @ s1 || read b @ s1 }" in
  let l = lang_of_program p in
  Alcotest.(check bool) "ab" true (Language.contains l [ a0; a1 ]);
  Alcotest.(check bool) "ba" true (Language.contains l [ a1; a0 ]);
  Alcotest.(check bool) "a alone" false (Language.contains l [ a0 ])

let agreement_with_enumeration =
  QCheck.Test.make
    ~name:"symbolic trace model contains every enumerated trace (loop-free)"
    ~count:150
    (QCheck.make (fun rng ->
         Sral.Generate.loop_free_program ~resources:[ "a"; "b" ]
           ~servers:[ "s1"; "s2" ] ~size:7 rng))
    (fun p ->
      let l = lang_of_program p in
      let enumerated =
        Sral.Trace_ops.to_list (Sral.Trace_ops.traces_bounded ~loop_bound:1 p)
      in
      List.for_all (fun t -> Language.contains l t) enumerated)

let thm31_roundtrip =
  QCheck.Test.make
    ~name:"Theorem 3.1: regex -> program -> same language" ~count:200
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let tbl = table () in
      let re = Regex.generate ~symbols:(sigma tbl) ~size:10 rng in
      let program = To_program.program ~table:tbl re in
      let l_re = Language.of_regex ~table:tbl re in
      let nfa = Of_program.nfa ~table:tbl program in
      let d = Dfa.minimize (Dfa.of_nfa ~alphabet:(sigma tbl) nfa) in
      Dfa.equiv l_re.Language.dfa d)

let test_to_program_empty_rejected () =
  let tbl = table () in
  Alcotest.check_raises "empty model" To_program.Empty_model (fun () ->
      ignore (To_program.program ~table:tbl Regex.Empty))

let test_to_program_drops_empty_alternative () =
  let tbl = table () in
  let re = Regex.Alt (Regex.Empty, Regex.Sym 0) in
  let p = To_program.program ~table:tbl re in
  Alcotest.(check bool) "just the symbol" true
    (Sral.Ast.equal p (Sral.Ast.Access a0))

let state_elim_roundtrip =
  QCheck.Test.make ~name:"state elimination: NFA -> regex -> same language"
    ~count:100
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let re = Regex.generate ~symbols:[ 0; 1 ] ~size:6 rng in
      let nfa = Nfa.of_regex re in
      let re2 = State_elim.regex nfa in
      let d1 = dfa_of_regex ~alphabet:[ 0; 1 ] re in
      let d2 = dfa_of_regex ~alphabet:[ 0; 1 ] re2 in
      Dfa.equiv d1 d2)

let test_language_witness () =
  let p = Sral.Parser.program "read a @ s1; read b @ s1" in
  let l = lang_of_program p in
  match Language.witness l with
  | Some t -> Alcotest.(check int) "witness length" 2 (Sral.Trace.length t)
  | None -> Alcotest.fail "expected a witness"

let test_language_to_regex () =
  let p = Sral.Parser.program "while c do { read a @ s1 }" in
  let l = lang_of_program p in
  let re = Language.to_regex l in
  Alcotest.(check bool) "eps in regex" true (Regex.matches re []);
  Alcotest.(check bool) "aa in regex" true (Regex.matches re [ 0; 0 ])

let test_language_table_sharing_enforced () =
  let l1 = Language.of_program (Sral.Ast.Access a0) in
  let l2 = Language.of_program (Sral.Ast.Access a0) in
  Alcotest.check_raises "different tables rejected"
    (Invalid_argument "Language: operands must share their symbol table")
    (fun () -> ignore (Language.equiv l1 l2))

let shuffle_commutes =
  QCheck.Test.make ~name:"shuffle is commutative (as a language)" ~count:80
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let r1 = Regex.generate ~symbols:[ 0; 1 ] ~size:4 rng in
      let r2 = Regex.generate ~symbols:[ 0; 1 ] ~size:4 rng in
      let n1 = Nfa.shuffle (Nfa.of_regex r1) (Nfa.of_regex r2) in
      let n2 = Nfa.shuffle (Nfa.of_regex r2) (Nfa.of_regex r1) in
      Dfa.equiv
        (Dfa.of_nfa ~alphabet:[ 0; 1 ] n1)
        (Dfa.of_nfa ~alphabet:[ 0; 1 ] n2))

let test_language_set_ops () =
  let table = Symbol.of_accesses [ a0; a1 ] in
  let l_a = Language.of_regex ~table (Regex.sym 0) in
  let l_b = Language.of_regex ~table (Regex.sym 1) in
  let l_union = Language.union l_a l_b in
  Alcotest.(check bool) "a in union" true (Language.contains l_union [ a0 ]);
  Alcotest.(check bool) "b in union" true (Language.contains l_union [ a1 ]);
  Alcotest.(check bool) "inter empty" true
    (Language.is_empty (Language.inter l_a l_b));
  let l_diff = Language.diff l_union l_b in
  Alcotest.(check bool) "diff keeps a" true (Language.contains l_diff [ a0 ]);
  Alcotest.(check bool) "diff drops b" false (Language.contains l_diff [ a1 ])

let complement_involution =
  QCheck.Test.make ~name:"complement is an involution" ~count:100
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let re = Regex.generate ~symbols:[ 0; 1 ] ~size:6 rng in
      let d = dfa_of_regex ~alphabet:[ 0; 1 ] re in
      Dfa.equiv d (Dfa.complement (Dfa.complement d)))

let de_morgan_on_languages =
  QCheck.Test.make ~name:"De Morgan: ¬(L1 ∪ L2) = ¬L1 ∩ ¬L2" ~count:100
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let r1 = Regex.generate ~symbols:[ 0; 1 ] ~size:5 rng in
      let r2 = Regex.generate ~symbols:[ 0; 1 ] ~size:5 rng in
      let d1 = dfa_of_regex ~alphabet:[ 0; 1 ] r1 in
      let d2 = dfa_of_regex ~alphabet:[ 0; 1 ] r2 in
      Dfa.equiv
        (Dfa.complement (Dfa.union d1 d2))
        (Dfa.inter (Dfa.complement d1) (Dfa.complement d2)))

(* --- dot rendering --- *)

let contains hay needle =
  let n = String.length needle in
  let rec scan i =
    i + n <= String.length hay && (String.sub hay i n = needle || scan (i + 1))
  in
  scan 0

let test_dot_nfa () =
  let n = Nfa.cat (Nfa.sym 0) (Nfa.sym 1) in
  let dot = Dot.nfa n in
  Alcotest.(check bool) "header" true (contains dot "digraph nfa");
  Alcotest.(check bool) "symbol edge" true (contains dot "[label=\"s0\"]");
  Alcotest.(check bool) "eps edge" true (contains dot "style=dashed")

let test_dot_dfa_hides_sink () =
  let d = dfa_of_regex ~alphabet:[ 0; 1 ] (Regex.cat (Regex.sym 0) (Regex.sym 1)) in
  let dot = Dot.dfa d in
  Alcotest.(check bool) "header" true (contains dot "digraph dfa");
  (* the sink exists in the DFA but not in the rendering *)
  Alcotest.(check bool) "has final state" true (contains dot "doublecircle")

let test_dot_with_table () =
  let table = Automata.Symbol.of_accesses [ a0 ] in
  let nfa = Of_program.nfa ~table (Sral.Ast.Access a0) in
  let dot = Dot.nfa ~table nfa in
  Alcotest.(check bool) "access label" true (contains dot "read a @ s1")

let () =
  Alcotest.run "automata"
    [
      ( "symbol",
        [
          Alcotest.test_case "interning" `Quick test_symbol_interning;
          Alcotest.test_case "growth" `Quick test_symbol_growth;
        ] );
      ( "regex",
        [
          Alcotest.test_case "smart constructors" `Quick
            test_regex_smart_constructors;
          Alcotest.test_case "nullable" `Quick test_regex_nullable;
          Alcotest.test_case "matches" `Quick test_regex_matches;
          Alcotest.test_case "derivative = DFA stepwise (shrinking)" `Quick
            test_derivative_matches_dfa_stepwise;
        ] );
      ( "nfa",
        [
          Alcotest.test_case "combinators" `Quick test_nfa_combinators;
          Alcotest.test_case "star" `Quick test_nfa_star;
          Alcotest.test_case "shuffle" `Quick test_nfa_shuffle;
          QCheck_alcotest.to_alcotest nfa_matches_regex;
        ] );
      ( "dfa",
        [
          Alcotest.test_case "subset construction" `Quick
            test_dfa_subset_construction;
          Alcotest.test_case "minimize size" `Quick test_dfa_minimize_size;
          QCheck_alcotest.to_alcotest minimize_preserves_language;
          Alcotest.test_case "boolean algebra" `Quick test_dfa_boolean_algebra;
          Alcotest.test_case "emptiness/witness" `Quick
            test_dfa_emptiness_witness;
          Alcotest.test_case "equiv/subset" `Quick test_dfa_equiv_subset;
          Alcotest.test_case "run/residual" `Quick test_dfa_run_residual;
          Alcotest.test_case "of_tables validation" `Quick
            test_dfa_of_tables_validation;
        ] );
      ( "program",
        [
          Alcotest.test_case "if = union" `Quick test_of_program_if_union;
          Alcotest.test_case "while = star" `Quick test_of_program_loop;
          Alcotest.test_case "par = shuffle" `Quick test_of_program_par;
          QCheck_alcotest.to_alcotest agreement_with_enumeration;
        ] );
      ( "theorem-3.1",
        [
          QCheck_alcotest.to_alcotest thm31_roundtrip;
          Alcotest.test_case "empty rejected" `Quick
            test_to_program_empty_rejected;
          Alcotest.test_case "empty alternative dropped" `Quick
            test_to_program_drops_empty_alternative;
          QCheck_alcotest.to_alcotest state_elim_roundtrip;
          QCheck_alcotest.to_alcotest shuffle_commutes;
        ] );
      ( "dot",
        [
          Alcotest.test_case "nfa" `Quick test_dot_nfa;
          Alcotest.test_case "dfa hides sink" `Quick test_dot_dfa_hides_sink;
          Alcotest.test_case "with table" `Quick test_dot_with_table;
        ] );
      ( "language",
        [
          Alcotest.test_case "witness" `Quick test_language_witness;
          Alcotest.test_case "to_regex" `Quick test_language_to_regex;
          Alcotest.test_case "table sharing" `Quick
            test_language_table_sharing_enforced;
          Alcotest.test_case "set ops" `Quick test_language_set_ops;
          QCheck_alcotest.to_alcotest complement_involution;
          QCheck_alcotest.to_alcotest de_morgan_on_languages;
        ] );
    ]
