(* Tests for the temporal library: exact rationals, intervals, step
   functions, the duration-calculus model checker (Theorem 4.1) and
   Eq. 4.1 validity durations. *)

open Temporal

let q = Q.of_int
let qq n d = Q.make n d
let iv a b = Interval.of_ints a b

let check_q msg expected actual =
  Alcotest.(check string) msg (Q.to_string expected) (Q.to_string actual)

(* --- rationals --- *)

let test_q_normalization () =
  check_q "6/4 = 3/2" (qq 3 2) (qq 6 4);
  check_q "-6/-4 = 3/2" (qq 3 2) (Q.make (-6) (-4));
  check_q "6/-4 = -3/2" (qq (-3) 2) (Q.make 6 (-4));
  check_q "0/5 = 0" Q.zero (Q.make 0 5)

let test_q_arithmetic () =
  check_q "1/2 + 1/3" (qq 5 6) (Q.add (qq 1 2) (qq 1 3));
  check_q "1/2 - 1/3" (qq 1 6) (Q.sub (qq 1 2) (qq 1 3));
  check_q "2/3 * 3/4" (qq 1 2) (Q.mul (qq 2 3) (qq 3 4));
  check_q "1/2 / 1/4" (q 2) (Q.div (qq 1 2) (qq 1 4));
  check_q "neg" (qq (-1) 2) (Q.neg (qq 1 2));
  check_q "abs" (qq 1 2) (Q.abs (qq (-1) 2));
  check_q "inv" (qq 3 2) (Q.inv (qq 2 3))

let test_q_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Q.lt (qq 1 3) (qq 1 2));
  Alcotest.(check bool) "2/4 = 1/2" true (Q.equal (qq 2 4) (qq 1 2));
  Alcotest.(check int) "sign" (-1) (Q.sign (qq (-1) 7));
  check_q "min" (qq 1 3) (Q.min (qq 1 3) (qq 1 2));
  check_q "mid" (qq 5 12) (Q.mid (qq 1 3) (qq 1 2))

let test_q_division_by_zero () =
  Alcotest.check_raises "make" Division_by_zero (fun () -> ignore (Q.make 1 0));
  Alcotest.check_raises "div" Division_by_zero (fun () ->
      ignore (Q.div Q.one Q.zero));
  Alcotest.check_raises "inv" Division_by_zero (fun () -> ignore (Q.inv Q.zero))

let test_q_of_string () =
  check_q "int" (q 3) (Q.of_string "3");
  check_q "fraction" (qq 3 4) (Q.of_string "3/4");
  check_q "negative fraction" (qq (-1) 2) (Q.of_string "-1/2");
  check_q "decimal" (qq 5 2) (Q.of_string "2.5");
  check_q "negative decimal" (qq (-5) 2) (Q.of_string "-2.5");
  Alcotest.check_raises "garbage" (Invalid_argument "Q.of_string: \"x\"")
    (fun () -> ignore (Q.of_string "x"))

let q_field_props =
  QCheck.Test.make ~name:"rational field laws (random small rationals)"
    ~count:300
    QCheck.(
      triple (pair (int_range (-20) 20) (int_range 1 12))
        (pair (int_range (-20) 20) (int_range 1 12))
        (pair (int_range (-20) 20) (int_range 1 12)))
    (fun ((n1, d1), (n2, d2), (n3, d3)) ->
      let x = Q.make n1 d1 and y = Q.make n2 d2 and z = Q.make n3 d3 in
      Q.equal (Q.add x y) (Q.add y x)
      && Q.equal (Q.add (Q.add x y) z) (Q.add x (Q.add y z))
      && Q.equal (Q.mul x (Q.add y z)) (Q.add (Q.mul x y) (Q.mul x z))
      && Q.equal (Q.sub x x) Q.zero)

(* --- intervals --- *)

let test_interval_basics () =
  let i = iv 2 5 in
  check_q "length" (q 3) (Interval.length i);
  Alcotest.(check bool) "contains" true (Interval.contains i (q 3));
  Alcotest.(check bool) "boundary" true (Interval.contains i (q 5));
  Alcotest.(check bool) "outside" false (Interval.contains i (q 6));
  Alcotest.(check bool) "point" true (Interval.is_point (iv 4 4));
  Alcotest.check_raises "lo > hi"
    (Invalid_argument "Interval.make: 5 > 2") (fun () ->
      ignore (Interval.make (q 5) (q 2)))

let test_interval_inter_split () =
  (match Interval.inter (iv 0 5) (iv 3 8) with
  | Some i -> Alcotest.(check bool) "inter" true (Interval.equal i (iv 3 5))
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true (Interval.inter (iv 0 1) (iv 2 3) = None);
  match Interval.split (iv 0 10) (q 4) with
  | Some (l, r) ->
      Alcotest.(check bool) "left" true (Interval.equal l (iv 0 4));
      Alcotest.(check bool) "right" true (Interval.equal r (iv 4 10))
  | None -> Alcotest.fail "split failed"

(* Boundary cases the workflow windows lean on (mirroring PR 5's
   crash-window boundary tests): point windows, touching endpoints,
   rational endpoints.  Interval is closed at *both* ends — unlike
   Fault.Plan's half-open crash windows — so a decision slot landing
   exactly on a window edge is in. *)
let test_interval_boundaries () =
  (* point (zero-length) windows contain exactly their instant *)
  let p = Interval.make (qq 5 2) (qq 5 2) in
  Alcotest.(check bool) "point is a point" true (Interval.is_point p);
  check_q "point has zero length" Q.zero (Interval.length p);
  Alcotest.(check bool) "point contains its instant" true
    (Interval.contains p (qq 5 2));
  Alcotest.(check bool) "point misses 5/2 + 1/1000" false
    (Interval.contains p (Q.add (qq 5 2) (qq 1 1000)));
  Alcotest.(check bool) "point misses 5/2 - 1/1000" false
    (Interval.contains p (Q.sub (qq 5 2) (qq 1 1000)));
  (* touching endpoints: the intersection degenerates to a point
     rather than disappearing *)
  (match Interval.inter (iv 0 4) (iv 4 9) with
  | Some i ->
      Alcotest.(check bool) "touching inter is the shared point" true
        (Interval.equal i (iv 4 4))
  | None -> Alcotest.fail "touching intervals must intersect");
  Alcotest.(check bool) "subsumes its own endpoint point" true
    (Interval.subsumes (iv 0 4) (iv 4 4));
  (* splitting at an endpoint yields a point half, not a failure *)
  (match Interval.split (iv 2 6) (q 2) with
  | Some (l, r) ->
      Alcotest.(check bool) "left half is the lo point" true
        (Interval.is_point l);
      Alcotest.(check bool) "right half is whole" true
        (Interval.equal r (iv 2 6))
  | None -> Alcotest.fail "split at lo endpoint failed");
  Alcotest.(check bool) "split outside fails" true
    (Interval.split (iv 2 6) (q 7) = None);
  (* rational endpoints are exact: no epsilon slop on either side *)
  let w = Interval.make (qq 1 3) (qq 2 3) in
  Alcotest.(check bool) "1/3 in" true (Interval.contains w (qq 1 3));
  Alcotest.(check bool) "2/3 in" true (Interval.contains w (qq 2 3));
  Alcotest.(check bool) "333333/1000000 out" false
    (Interval.contains w (Q.make 333333 1000000));
  check_q "exact rational length" (qq 1 3) (Interval.length w);
  match Interval.inter (Interval.make (qq 1 3) (qq 1 2)) (Interval.make (qq 1 2) (qq 2 3)) with
  | Some i ->
      Alcotest.(check bool) "rational touching point" true
        (Interval.equal i (Interval.make (qq 1 2) (qq 1 2)))
  | None -> Alcotest.fail "rational touching intervals must intersect"

(* --- step functions --- *)

let test_step_fn_value_at () =
  let f = Step_fn.of_changes ~init:false [ (q 2, true); (q 5, false) ] in
  Alcotest.(check bool) "before" false (Step_fn.value_at f (q 1));
  Alcotest.(check bool) "at change" true (Step_fn.value_at f (q 2));
  Alcotest.(check bool) "inside" true (Step_fn.value_at f (q 4));
  Alcotest.(check bool) "at fall" false (Step_fn.value_at f (q 5));
  Alcotest.(check bool) "after" false (Step_fn.value_at f (q 9))

let test_step_fn_normalization () =
  (* redundant changes collapse; equality is extensional *)
  let f1 = Step_fn.of_changes ~init:false [ (q 2, true); (q 3, true); (q 5, false) ] in
  let f2 = Step_fn.of_changes ~init:false [ (q 2, true); (q 5, false) ] in
  Alcotest.(check bool) "normalized equal" true (Step_fn.equal f1 f2);
  let f3 = Step_fn.of_changes ~init:true [ (q 0, true) ] in
  Alcotest.(check bool) "no-op change dropped" true
    (Step_fn.equal f3 (Step_fn.const true))

let test_step_fn_of_intervals () =
  let f = Step_fn.of_intervals [ iv 1 3; iv 2 5; iv 7 8 ] in
  Alcotest.(check bool) "overlap covered" true (Step_fn.value_at f (q 4));
  Alcotest.(check bool) "gap" false (Step_fn.value_at f (q 6));
  Alcotest.(check bool) "second blob" true (Step_fn.value_at f (qq 15 2));
  Alcotest.(check bool) "right-open" false (Step_fn.value_at f (q 8));
  check_q "measure" (q 5) (Step_fn.integrate f (iv 0 10))

let test_step_fn_point_interval () =
  let f = Step_fn.of_intervals [ iv 3 3 ] in
  Alcotest.(check bool) "point contributes nothing" true
    (Step_fn.equal f (Step_fn.const false))

let test_step_fn_boolean_ops () =
  let f = Step_fn.of_intervals [ iv 0 4 ] in
  let g = Step_fn.of_intervals [ iv 2 6 ] in
  let fg = Step_fn.and_ f g in
  let f_or_g = Step_fn.or_ f g in
  check_q "and measure" (q 2) (Step_fn.integrate fg (iv 0 10));
  check_q "or measure" (q 6) (Step_fn.integrate f_or_g (iv 0 10));
  (* De Morgan *)
  Alcotest.(check bool) "de morgan" true
    (Step_fn.equal
       (Step_fn.not_ fg)
       (Step_fn.or_ (Step_fn.not_ f) (Step_fn.not_ g)))

let test_step_fn_integrate_partial () =
  let f = Step_fn.of_intervals [ iv 2 8 ] in
  check_q "clipped" (q 3) (Step_fn.integrate f (iv 5 10));
  check_q "inside" (q 2) (Step_fn.integrate f (iv 3 5));
  check_q "disjoint" Q.zero (Step_fn.integrate f (iv 9 12));
  check_q "point" Q.zero (Step_fn.integrate f (iv 4 4))

let test_accum_reaches () =
  let f = Step_fn.of_intervals [ iv 0 2; iv 5 9 ] in
  (* budget 3: 2 units by t=2, third unit at t=6 *)
  (match Step_fn.accum_reaches f ~from:Q.zero ~budget:(q 3) with
  | Some t -> check_q "cutoff" (q 6) t
  | None -> Alcotest.fail "should reach");
  (match Step_fn.accum_reaches f ~from:Q.zero ~budget:(q 7) with
  | Some _ -> Alcotest.fail "only 6 units available"
  | None -> ());
  (* from the middle *)
  (match Step_fn.accum_reaches f ~from:(q 1) ~budget:(q 2) with
  | Some t -> check_q "from 1" (q 6) t
  | None -> Alcotest.fail "should reach");
  (* eventually-true function accumulates forever *)
  let g = Step_fn.of_changes ~init:false [ (q 3, true) ] in
  match Step_fn.accum_reaches g ~from:Q.zero ~budget:(q 10) with
  | Some t -> check_q "tail accumulation" (q 13) t
  | None -> Alcotest.fail "should reach eventually"

let test_accum_zero_budget () =
  let f = Step_fn.const false in
  match Step_fn.accum_reaches f ~from:(q 4) ~budget:Q.zero with
  | Some t -> check_q "immediately" (q 4) t
  | None -> Alcotest.fail "zero budget reached immediately"

let step_fn_ops_pointwise =
  QCheck.Test.make ~name:"and/or/not are pointwise (random step fns)"
    ~count:200
    QCheck.(
      pair
        (small_list (pair (int_range 0 20) bool))
        (small_list (pair (int_range 0 20) bool)))
    (fun (ch1, ch2) ->
      let mk ch =
        Step_fn.of_changes ~init:false
          (List.map (fun (t, v) -> (q t, v)) ch)
      in
      let f = mk ch1 and g = mk ch2 in
      let samples = List.init 22 (fun i -> Q.add (q i) (qq 1 2)) in
      List.for_all
        (fun t ->
          Step_fn.value_at (Step_fn.and_ f g) t
          = (Step_fn.value_at f t && Step_fn.value_at g t)
          && Step_fn.value_at (Step_fn.or_ f g) t
             = (Step_fn.value_at f t || Step_fn.value_at g t)
          && Step_fn.value_at (Step_fn.not_ f) t = not (Step_fn.value_at f t))
        samples)

(* --- state expressions --- *)

let test_state_expr () =
  let v = Step_fn.of_intervals [ iv 0 5 ] in
  let w = Step_fn.of_intervals [ iv 3 8 ] in
  let interp = function "v" -> v | "w" -> w | _ -> raise Not_found in
  let e = State_expr.And (State_expr.Var "v", State_expr.Not (State_expr.Var "w")) in
  let f = State_expr.eval interp e in
  Alcotest.(check bool) "v and not w at 1" true (Step_fn.value_at f (q 1));
  Alcotest.(check bool) "at 4" false (Step_fn.value_at f (q 4));
  Alcotest.(check (list string)) "vars" [ "v"; "w" ]
    (State_expr.vars e)

(* --- duration calculus --- *)

let dc_interp () =
  let v = Step_fn.of_intervals [ iv 0 4; iv 6 10 ] in
  fun name -> if name = "v" then v else invalid_arg name

let test_dc_atomic () =
  let interp = dc_interp () in
  let open Duration_calculus in
  Alcotest.(check bool) "true" true (sat interp (iv 0 10) True);
  Alcotest.(check bool) "dur = 8" true
    (sat interp (iv 0 10) (Dur_cmp (State_expr.Var "v", Eq, q 8)));
  Alcotest.(check bool) "dur <= 7 fails" false
    (sat interp (iv 0 10) (Dur_cmp (State_expr.Var "v", Le, q 7)));
  Alcotest.(check bool) "len" true (sat interp (iv 0 10) (Len_cmp (Eq, q 10)));
  Alcotest.(check bool) "everywhere on [1,3]" true
    (sat interp (iv 1 3) (Everywhere (State_expr.Var "v")));
  Alcotest.(check bool) "everywhere on [3,7] fails" false
    (sat interp (iv 3 7) (Everywhere (State_expr.Var "v")));
  Alcotest.(check bool) "everywhere needs non-point" false
    (sat interp (iv 2 2) (Everywhere (State_expr.Var "v")))

let test_dc_boolean' () =
  let interp = dc_interp () in
  let open Duration_calculus in
  let phi = Dur_cmp (State_expr.Var "v", Ge, q 3) in
  Alcotest.(check bool) "and" true
    (sat interp (iv 0 10) (And (phi, Len_cmp (Ge, q 5))));
  Alcotest.(check bool) "not" false (sat interp (iv 0 10) (Not phi));
  Alcotest.(check bool) "vacuous implies" true
    (sat interp (iv 0 10) (implies (Len_cmp (Le, q 1)) false_))

let test_dc_chop () =
  let interp = dc_interp () in
  let open Duration_calculus in
  (* [0,10] splits into an all-v prefix and a remainder of length >= 6 *)
  let f = Everywhere (State_expr.Var "v") in
  let g = Len_cmp (Ge, q 6) in
  Alcotest.(check bool) "chop holds" true (sat interp (iv 0 10) (Chop (f, g)));
  (match chop_witness interp (iv 0 10) f g with
  | Some m ->
      Alcotest.(check bool) "witness in (0,4]" true (Q.gt m Q.zero && Q.le m (q 4))
  | None -> Alcotest.fail "expected witness");
  (* impossible: all-v prefix of length >= 5 *)
  let g2 = Len_cmp (Ge, q 5) in
  Alcotest.(check bool) "no 5-long all-v prefix" false
    (sat interp (iv 0 10) (Chop (And (f, Len_cmp (Ge, q 5)), g2)))

let test_dc_chop_exact_budget () =
  (* chop point must be found at the exact integral threshold *)
  let interp = dc_interp () in
  let open Duration_calculus in
  let spent = Dur_cmp (State_expr.Var "v", Eq, q 4) in
  let none_left = Dur_cmp (State_expr.Var "v", Eq, q 4) in
  (* split [0,10] so each side holds exactly 4 units of v *)
  Alcotest.(check bool) "4|4 split exists" true
    (sat interp (iv 0 10) (Chop (spent, none_left)))

let test_dc_nested_chop () =
  let interp = dc_interp () in
  let open Duration_calculus in
  (* three-way split: v-only ; gap ; v-only *)
  let all_v = Everywhere (State_expr.Var "v") in
  let no_v = Everywhere (State_expr.Not (State_expr.Var "v")) in
  Alcotest.(check bool) "v;(!v;v)" true
    (sat interp (iv 0 10) (Chop (all_v, Chop (no_v, all_v))))

let test_thm41_formula () =
  (* Theorem 4.1's constraint shape: ∫valid <= dur *)
  let active = Step_fn.of_intervals [ iv 0 20 ] in
  let valid =
    Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:(Some (q 5)) active
  in
  let interp name = if name = "valid" then valid else invalid_arg name in
  let formula = Validity.as_dc_formula ~dur:(q 5) ~valid_var:"valid" in
  Alcotest.(check bool) "holds over whole line" true
    (Duration_calculus.sat interp (iv 0 20) formula);
  (* and the integral is exactly the duration *)
  check_q "spent exactly dur" (q 5) (Step_fn.integrate valid (iv 0 20))

(* --- validity (Eq. 4.1) --- *)

let test_validity_whole_journey () =
  let active = Step_fn.of_intervals [ iv 0 10 ] in
  let valid =
    Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:(Some (q 4)) active
  in
  Alcotest.(check bool) "valid at 2" true (Step_fn.value_at valid (q 2));
  Alcotest.(check bool) "invalid at 4" false (Step_fn.value_at valid (q 4));
  Alcotest.(check bool) "invalid at 9" false (Step_fn.value_at valid (q 9))

let test_validity_gaps_pause_burn () =
  (* inactive gaps do not consume the budget *)
  let active = Step_fn.of_intervals [ iv 0 2; iv 6 12 ] in
  let valid =
    Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:(Some (q 4)) active
  in
  Alcotest.(check bool) "valid again at 7" true (Step_fn.value_at valid (q 7));
  Alcotest.(check bool) "expires at 8 (2+2)" false
    (Step_fn.value_at valid (q 8))

let test_validity_per_server_resets () =
  let active = Step_fn.of_intervals [ iv 0 20 ] in
  let arrivals = [ Q.zero; q 10 ] in
  let dur = Some (q 4) in
  let journey =
    Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals ~dur active
  in
  let per_server =
    Validity.valid_fn ~scheme:Validity.Per_server ~arrivals ~dur active
  in
  (* at t=12: journey budget long gone; per-server budget reset at 10 *)
  Alcotest.(check bool) "journey expired" false
    (Step_fn.value_at journey (q 12));
  Alcotest.(check bool) "per-server fresh" true
    (Step_fn.value_at per_server (q 12));
  Alcotest.(check bool) "per-server expires at 14" false
    (Step_fn.value_at per_server (q 14))

let test_validity_infinite () =
  let active = Step_fn.of_intervals [ iv 0 1000 ] in
  let valid =
    Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:None active
  in
  Alcotest.(check bool) "never expires" true (Step_fn.value_at valid (q 999))

let test_validity_spent () =
  let active = Step_fn.of_intervals [ iv 0 10 ] in
  let spent =
    Validity.spent ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:(Some (q 4)) active ~at:(q 2)
  in
  check_q "spent 2 at t=2" (q 2) spent;
  let spent_late =
    Validity.spent ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
      ~dur:(Some (q 4)) active ~at:(q 9)
  in
  check_q "caps at dur" (q 4) spent_late

let test_validity_errors () =
  let active = Step_fn.const true in
  Alcotest.check_raises "empty arrivals"
    (Invalid_argument "Validity: empty arrival list") (fun () ->
      ignore
        (Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[]
           ~dur:None active));
  Alcotest.check_raises "unsorted arrivals"
    (Invalid_argument "Validity: arrivals not sorted") (fun () ->
      ignore
        (Validity.valid_fn ~scheme:Validity.Whole_journey
           ~arrivals:[ q 5; q 1 ] ~dur:None active))

let validity_never_exceeds_dur =
  QCheck.Test.make
    ~name:"Eq 4.1: accumulated validity never exceeds dur (random activity)"
    ~count:200
    QCheck.(
      pair
        (small_list (pair (int_range 0 30) (int_range 0 30)))
        (int_range 1 10))
    (fun (raw_intervals, dur) ->
      let intervals =
        List.filter_map
          (fun (a, b) -> if a < b then Some (iv a b) else None)
          raw_intervals
      in
      let active = Step_fn.of_intervals intervals in
      let valid =
        Validity.valid_fn ~scheme:Validity.Whole_journey ~arrivals:[ Q.zero ]
          ~dur:(Some (q dur)) active
      in
      Q.le (Step_fn.integrate valid (iv 0 40)) (q dur)
      (* and valid implies active *)
      && List.for_all
           (fun i ->
             let t = qq (2 * i + 1) 2 in
             (not (Step_fn.value_at valid t)) || Step_fn.value_at active t)
           (List.init 40 Fun.id))

let test_dc_derived_modalities () =
  let interp = dc_interp () in
  let open Duration_calculus in
  let v = Everywhere (State_expr.Var "v") in
  (* v holds on [0,4] and [6,10]: some subinterval is all-v *)
  Alcotest.(check bool) "eventually" true
    (sat interp (iv 0 10) (eventually v));
  (* but not every subinterval *)
  Alcotest.(check bool) "not always" false (sat interp (iv 0 10) (always v));
  (* classic DC subtlety: □⌈v⌉ is false even on a pure stretch because
     point subintervals never satisfy ⌈v⌉; the standard idiom adds
     ℓ = 0 *)
  Alcotest.(check bool) "always bare everywhere fails (points)" false
    (sat interp (iv 1 3) (always v));
  Alcotest.(check bool) "always (v or len=0) on pure stretch" true
    (sat interp (iv 1 3) (always (Or (v, Len_cmp (Eq, Q.zero)))));
  Alcotest.(check bool) "always (v or len=0) fails across gap" false
    (sat interp (iv 1 6) (always (Or (v, Len_cmp (Eq, Q.zero)))));
  Alcotest.(check bool) "begins" true (sat interp (iv 0 10) (begins v));
  Alcotest.(check bool) "ends" true (sat interp (iv 6 10) (ends v));
  (* [3,5] starts in a gap region partially: v true on [3,4) only *)
  Alcotest.(check bool) "ends fails when suffix has gap" false
    (sat interp (iv 0 6) (ends v))

(* differential: the chop decision agrees with brute-force grid search
   (grid witnesses imply sat; sat implies a verifiable witness) *)
let chop_agrees_with_grid =
  QCheck.Test.make ~name:"chop decision vs dense grid search" ~count:150
    QCheck.(
      pair
        (small_list (pair (int_range 0 16) (int_range 0 16)))
        (pair (int_range 0 8) (int_range 1 8)))
    (fun (raw_intervals, (c1, c2)) ->
      let intervals =
        List.filter_map
          (fun (a, b) -> if a < b then Some (iv a b) else None)
          raw_intervals
      in
      let v = Step_fn.of_intervals intervals in
      let interp name = if name = "v" then v else invalid_arg name in
      let span = iv 0 16 in
      let open Duration_calculus in
      let f = Dur_cmp (State_expr.Var "v", Ge, q c1) in
      let g = Dur_cmp (State_expr.Var "v", Le, q c2) in
      let formula = Chop (f, g) in
      let symbolic = sat interp span formula in
      (* brute force: chop points on a 1/4 grid *)
      let grid = List.init 65 (fun i -> qq i 4) in
      let brute =
        List.exists
          (fun m ->
            match Interval.split span m with
            | Some (l, r) -> sat interp l f && sat interp r g
            | None -> false)
          grid
      in
      (* the grid can miss exact crossing points but never invents
         witnesses: brute -> symbolic.  And a positive symbolic answer
         must come with a checkable witness. *)
      (if brute then symbolic else true)
      &&
      if symbolic then
        match chop_witness interp span f g with
        | Some m -> (
            match Interval.split span m with
            | Some (l, r) -> sat interp l f && sat interp r g
            | None -> false)
        | None -> false
      else true)

(* --- periodic (TRBAC baseline) --- *)

let test_periodic_contains () =
  let night = Periodic.daily ~start_hour:(q 22) ~length_hours:(q 5) in
  Alcotest.(check bool) "23:00 in window" true
    (Periodic.contains night (q 23));
  Alcotest.(check bool) "01:00 next day (wraps)" true
    (Periodic.contains night (q 25));
  Alcotest.(check bool) "noon outside" false (Periodic.contains night (q 12));
  Alcotest.(check bool) "repeats next day" true
    (Periodic.contains night (q 47));
  Alcotest.(check bool) "27:00 is 3am: closed" false
    (Periodic.contains night (q 27))

let test_periodic_step_fn () =
  let night = Periodic.daily ~start_hour:(q 22) ~length_hours:(q 5) in
  let f = Periodic.to_step_fn ~horizon:(q 72) night in
  Alcotest.(check bool) "agrees with contains at 23" true
    (Step_fn.value_at f (q 23));
  Alcotest.(check bool) "agrees at 12" false (Step_fn.value_at f (q 12));
  (* windows within [0,72]: [0,3) (tail of the window opened at -2),
     [22,27), [46,51) and [70,72) (clipped) — 3+5+5+2 hours *)
  check_q "total enabled time" (q 15) (Step_fn.integrate f (iv 0 72))

let test_periodic_next_window () =
  let night = Periodic.daily ~start_hour:(q 22) ~length_hours:(q 5) in
  check_q "from noon" (q 22) (Periodic.next_window_start night ~after:(q 12));
  check_q "from 23 (already open, next start)" (q 46)
    (Periodic.next_window_start night ~after:(Q.add (q 22) (qq 1 2)));
  check_q "exactly at start" (q 22)
    (Periodic.next_window_start night ~after:(q 22))

let test_periodic_measure () =
  let night = Periodic.daily ~start_hour:(q 22) ~length_hours:(q 5) in
  check_q "one full night" (q 5)
    (Periodic.enabled_measure night (Interval.make (q 22) (q 27)));
  check_q "half a night" (qq 5 2)
    (Periodic.enabled_measure night
       (Interval.make (q 22) (Q.add (q 22) (qq 5 2))))

(* Periodic windows are half-open [start, start + length) — the other
   convention from Interval's closed one; these boundary cases pin the
   difference down exactly where workflow windows meet TRBAC-style
   enabling. *)
let test_periodic_boundaries () =
  let night = Periodic.daily ~start_hour:(q 22) ~length_hours:(q 5) in
  Alcotest.(check bool) "open exactly at start" true
    (Periodic.contains night (q 22));
  Alcotest.(check bool) "closed exactly at end (22+5=27)" false
    (Periodic.contains night (q 27));
  Alcotest.(check bool) "1/1000 before the end still in" true
    (Periodic.contains night (Q.sub (q 27) (qq 1 1000)));
  Alcotest.(check bool) "1/1000 before start still out" false
    (Periodic.contains night (Q.sub (q 22) (qq 1 1000)));
  (* next_window_start at the exact boundaries *)
  check_q "asking exactly at the end gets the next repetition" (q 46)
    (Periodic.next_window_start night ~after:(q 27));
  check_q "asking exactly at the start gets this repetition" (q 22)
    (Periodic.next_window_start night ~after:(q 22));
  (* a whole-period window is enabled everywhere *)
  let always = Periodic.make ~start:Q.zero ~length:(q 24) ~period:(q 24) in
  Alcotest.(check bool) "full-period window always on" true
    (Periodic.contains always (qq 999 7));
  check_q "full-period measure is the interval length" (q 10)
    (Periodic.enabled_measure always (iv 3 13));
  (* measuring across the closed end: [27, 46] holds no window time
     except the opening instant 46, which has measure zero *)
  check_q "gap between repetitions measures zero" Q.zero
    (Periodic.enabled_measure night (Interval.make (q 27) (q 46)));
  (* rational-endpoint periodic window: start 1/2, length 1/3 *)
  let tiny = Periodic.make ~start:(qq 1 2) ~length:(qq 1 3) ~period:(q 2) in
  Alcotest.(check bool) "1/2 in" true (Periodic.contains tiny (qq 1 2));
  Alcotest.(check bool) "5/6 out (half-open)" false
    (Periodic.contains tiny (qq 5 6));
  Alcotest.(check bool) "5/6 - 1/1000 in" true
    (Periodic.contains tiny (Q.sub (qq 5 6) (qq 1 1000)));
  Alcotest.(check bool) "repeats at 5/2" true
    (Periodic.contains tiny (qq 5 2));
  check_q "rational window measure over one period" (qq 1 3)
    (Periodic.enabled_measure tiny (Interval.make Q.zero (q 2)))

let test_periodic_validation () =
  Alcotest.check_raises "bad period"
    (Invalid_argument "Periodic.make: period <= 0") (fun () ->
      ignore (Periodic.make ~start:Q.zero ~length:Q.one ~period:Q.zero));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Periodic.make: length out of (0, period]") (fun () ->
      ignore (Periodic.make ~start:Q.zero ~length:(q 30) ~period:(q 24)));
  Alcotest.check_raises "bad start"
    (Invalid_argument "Periodic.make: start out of [0, period)") (fun () ->
      ignore (Periodic.make ~start:(q 25) ~length:Q.one ~period:(q 24)))

let periodic_step_fn_agrees =
  QCheck.Test.make ~name:"to_step_fn agrees with contains" ~count:200
    QCheck.(
      quad (int_range 0 23) (int_range 1 24) (int_range 0 200)
        (int_range 1 4))
    (fun (start, len, sample2, den) ->
      let p =
        Periodic.make ~start:(q start) ~length:(q (min len 24))
          ~period:(q 24)
      in
      let t = Q.make sample2 den in
      let f = Periodic.to_step_fn ~horizon:(q 201) p in
      Q.gt t (q 200) || Step_fn.value_at f t = Periodic.contains p t)

let () =
  Alcotest.run "temporal"
    [
      ( "rationals",
        [
          Alcotest.test_case "normalization" `Quick test_q_normalization;
          Alcotest.test_case "arithmetic" `Quick test_q_arithmetic;
          Alcotest.test_case "compare" `Quick test_q_compare;
          Alcotest.test_case "division by zero" `Quick test_q_division_by_zero;
          Alcotest.test_case "of_string" `Quick test_q_of_string;
          QCheck_alcotest.to_alcotest q_field_props;
        ] );
      ( "intervals",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "inter/split" `Quick test_interval_inter_split;
          Alcotest.test_case "boundaries" `Quick test_interval_boundaries;
        ] );
      ( "step-fn",
        [
          Alcotest.test_case "value_at" `Quick test_step_fn_value_at;
          Alcotest.test_case "normalization" `Quick test_step_fn_normalization;
          Alcotest.test_case "of_intervals" `Quick test_step_fn_of_intervals;
          Alcotest.test_case "point interval" `Quick test_step_fn_point_interval;
          Alcotest.test_case "boolean ops" `Quick test_step_fn_boolean_ops;
          Alcotest.test_case "integrate partial" `Quick
            test_step_fn_integrate_partial;
          Alcotest.test_case "accum_reaches" `Quick test_accum_reaches;
          Alcotest.test_case "zero budget" `Quick test_accum_zero_budget;
          QCheck_alcotest.to_alcotest step_fn_ops_pointwise;
        ] );
      ("state-expr", [ Alcotest.test_case "eval" `Quick test_state_expr ]);
      ( "duration-calculus",
        [
          Alcotest.test_case "atomic" `Quick test_dc_atomic;
          Alcotest.test_case "boolean" `Quick test_dc_boolean';
          Alcotest.test_case "chop" `Quick test_dc_chop;
          Alcotest.test_case "chop exact budget" `Quick
            test_dc_chop_exact_budget;
          Alcotest.test_case "nested chop" `Quick test_dc_nested_chop;
          Alcotest.test_case "theorem 4.1 formula" `Quick test_thm41_formula;
          Alcotest.test_case "derived modalities" `Quick
            test_dc_derived_modalities;
          QCheck_alcotest.to_alcotest chop_agrees_with_grid;
        ] );
      ( "periodic",
        [
          Alcotest.test_case "contains" `Quick test_periodic_contains;
          Alcotest.test_case "step fn" `Quick test_periodic_step_fn;
          Alcotest.test_case "next window" `Quick test_periodic_next_window;
          Alcotest.test_case "measure" `Quick test_periodic_measure;
          Alcotest.test_case "boundaries" `Quick test_periodic_boundaries;
          Alcotest.test_case "validation" `Quick test_periodic_validation;
          QCheck_alcotest.to_alcotest periodic_step_fn_agrees;
        ] );
      ( "validity",
        [
          Alcotest.test_case "whole journey" `Quick test_validity_whole_journey;
          Alcotest.test_case "gaps pause burn" `Quick
            test_validity_gaps_pause_burn;
          Alcotest.test_case "per-server resets" `Quick
            test_validity_per_server_resets;
          Alcotest.test_case "infinite" `Quick test_validity_infinite;
          Alcotest.test_case "spent" `Quick test_validity_spent;
          Alcotest.test_case "errors" `Quick test_validity_errors;
          QCheck_alcotest.to_alcotest validity_never_exceeds_dur;
        ] );
    ]
