(* Tests for the fault-injection subsystem: PRNG determinism, plan
   generation, backoff arithmetic, injector coins, the trace-level
   invariant checker, and whole chaos runs (fail-closed + determinism)
   fuzzed over many seeded coalitions. *)

module Q = Temporal.Q

let q = Q.of_int

(* --- prng --- *)

let test_prng_stream_deterministic () =
  let a = Fault.Prng.of_seed 42 and b = Fault.Prng.of_seed 42 in
  for i = 1 to 100 do
    let x = Fault.Prng.next a and y = Fault.Prng.next b in
    if not (Int64.equal x y) then
      Alcotest.failf "streams diverge at draw %d" i
  done;
  let c = Fault.Prng.of_seed 43 in
  Alcotest.(check bool) "different seed, different stream" false
    (Int64.equal (Fault.Prng.next (Fault.Prng.of_seed 42)) (Fault.Prng.next c))

let test_prng_ranges () =
  let g = Fault.Prng.of_seed 7 in
  for _ = 1 to 1000 do
    let f = Fault.Prng.float g in
    if not (f >= 0. && f < 1.) then Alcotest.failf "float out of range: %f" f;
    let n = Fault.Prng.int g ~bound:10 in
    if n < 0 || n >= 10 then Alcotest.failf "int out of range: %d" n
  done;
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Prng.int: bound <= 0") (fun () ->
      ignore (Fault.Prng.int g ~bound:0))

let test_prng_uniform_order_independent () =
  let keys = List.init 20 (Printf.sprintf "key-%d") in
  let forward = List.map (fun k -> Fault.Prng.uniform ~seed:5 k) keys in
  let backward =
    List.rev (List.map (fun k -> Fault.Prng.uniform ~seed:5 k) (List.rev keys))
  in
  Alcotest.(check (list (float 0.))) "order cannot perturb coins" forward
    backward;
  List.iter
    (fun u ->
      if not (u >= 0. && u < 1.) then Alcotest.failf "uniform out of range: %f" u)
    forward

let test_prng_keyed_substreams_independent () =
  (* the s1 substream is the same whether or not other substreams are
     drawn from *)
  let draw key = Fault.Prng.next (Fault.Prng.of_key ~seed:11 key) in
  let first = draw "s1" in
  ignore (draw "s2");
  ignore (draw "s3");
  Alcotest.(check bool) "s1 substream unmoved" true
    (Int64.equal first (draw "s1"));
  Alcotest.(check bool) "s1 and s2 substreams differ" false
    (Int64.equal (draw "s1") (draw "s2"))

(* --- plans --- *)

let test_plan_of_name_deterministic () =
  let make () =
    Fault.Plan.of_name "moderate" ~seed:42 ~servers:[ "s1"; "s2" ] ~horizon:100
  in
  Alcotest.(check bool) "same quadruple, same plan" true (make () = make ());
  let reseeded =
    Fault.Plan.of_name "moderate" ~seed:43 ~servers:[ "s1"; "s2" ] ~horizon:100
  in
  Alcotest.(check bool) "different seed, different plan" false
    (make () = reseeded)

let test_plan_substreams_stable_under_growth () =
  let windows_of plan s = List.assoc s plan.Fault.Plan.crashes in
  let small =
    Fault.Plan.of_name "heavy" ~seed:9 ~servers:[ "s1" ] ~horizon:100
  in
  let large =
    Fault.Plan.of_name "heavy" ~seed:9 ~servers:[ "s1"; "s2"; "s3" ]
      ~horizon:100
  in
  Alcotest.(check bool) "adding servers never moves s1's windows" true
    (windows_of small "s1" = windows_of large "s1")

let test_plan_windows_well_formed () =
  List.iter
    (fun seed ->
      let plan =
        Fault.Plan.of_name "heavy" ~seed ~servers:[ "s1"; "s2"; "s3" ]
          ~horizon:80
      in
      List.iter
        (fun (server, windows) ->
          let rec walk last = function
            | [] -> ()
            | { Fault.Plan.from_; until } :: rest ->
                if not (Q.lt from_ until) then
                  Alcotest.failf "seed %d %s: empty window" seed server;
                if not (Q.le last from_) then
                  Alcotest.failf "seed %d %s: overlap/unsorted" seed server;
                walk until rest
          in
          walk Q.zero windows)
        plan.Fault.Plan.crashes)
    (List.init 50 Fun.id)

let test_plan_validation () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  expect_invalid "unknown name" (fun () ->
      Fault.Plan.of_name "apocalyptic" ~seed:1 ~servers:[] ~horizon:10);
  expect_invalid "probability out of range" (fun () ->
      Fault.Plan.make ~migration_failure:1.5 ());
  expect_invalid "fates exceed certainty" (fun () ->
      Fault.Plan.make ~channel_drop:0.5 ~channel_delay:0.4
        ~channel_duplicate:0.2 ());
  expect_invalid "empty window" (fun () ->
      Fault.Plan.make
        ~crashes:[ ("s1", [ { Fault.Plan.from_ = q 5; until = q 5 } ]) ]
        ());
  expect_invalid "overlapping windows" (fun () ->
      Fault.Plan.make
        ~crashes:
          [
            ( "s1",
              [
                { Fault.Plan.from_ = q 1; until = q 5 };
                { Fault.Plan.from_ = q 4; until = q 8 };
              ] );
          ]
        ());
  let none = Fault.Plan.none in
  Alcotest.(check bool) "none has no crashes" true
    (none.Fault.Plan.crashes = []);
  Alcotest.(check (float 0.)) "none injects nothing" 0.
    (none.Fault.Plan.migration_failure +. none.Fault.Plan.channel_drop
    +. none.Fault.Plan.channel_delay
    +. none.Fault.Plan.channel_duplicate
    +. none.Fault.Plan.signal_loss)

let test_plan_window_queries () =
  let plan =
    Fault.Plan.make
      ~crashes:[ ("s1", [ { Fault.Plan.from_ = q 5; until = q 10 } ]) ]
      ()
  in
  let down t = Fault.Plan.server_down plan ~server:"s1" ~time:t in
  Alcotest.(check bool) "before" false (down (q 4));
  Alcotest.(check bool) "inclusive start" true (down (q 5));
  Alcotest.(check bool) "inside" true (down (Q.make 19 2));
  Alcotest.(check bool) "exclusive end" false (down (q 10));
  Alcotest.(check bool) "other server" false
    (Fault.Plan.server_down plan ~server:"s2" ~time:(q 6));
  (match Fault.Plan.recovery plan ~server:"s1" ~time:(q 7) with
  | Some t -> Alcotest.(check string) "recovery time" "10" (Q.to_string t)
  | None -> Alcotest.fail "expected a recovery time");
  Alcotest.(check bool) "no recovery when up" true
    (Fault.Plan.recovery plan ~server:"s1" ~time:(q 3) = None);
  (* exact rational endpoints: windows are half-open [from, until), and
     membership must be decided by exact ℚ comparison, not float
     rounding — 7/2 and 21/4 have no short decimal form *)
  let rational =
    Fault.Plan.make
      ~crashes:
        [ ("s1", [ { Fault.Plan.from_ = Q.make 7 2; until = Q.make 21 4 } ]) ]
      ()
  in
  let down t = Fault.Plan.server_down rational ~server:"s1" ~time:t in
  Alcotest.(check bool) "just below rational start" false
    (down (Q.make 6999 2000));
  Alcotest.(check bool) "exact rational start is down" true (down (Q.make 7 2));
  Alcotest.(check bool) "exact rational end is up" false (down (Q.make 21 4));
  Alcotest.(check bool) "just below rational end" true
    (down (Q.make 20999 4000));
  (match Fault.Plan.recovery rational ~server:"s1" ~time:(Q.make 7 2) with
  | Some t -> Alcotest.(check string) "rational recovery" "21/4" (Q.to_string t)
  | None -> Alcotest.fail "expected recovery at the rational start");
  (* restrict drops other servers' windows and keeps the kept ones
     byte-identical *)
  let restricted = Fault.Plan.restrict plan ~servers:[ "s1" ] in
  Alcotest.(check bool) "restrict keeps s1" true
    (Fault.Plan.server_down restricted ~server:"s1" ~time:(q 5));
  let dropped = Fault.Plan.restrict plan ~servers:[ "s2" ] in
  Alcotest.(check bool) "restrict drops s1" false
    (Fault.Plan.server_down dropped ~server:"s1" ~time:(q 5))

(* --- resilience / backoff --- *)

let test_backoff_values () =
  let injector = Fault.Injector.create ~seed:1 Fault.Plan.none in
  let policy = Fault.Resilience.make ~jitter:false () in
  let backoff attempt =
    Q.to_string (Fault.Injector.backoff injector policy ~agent:"a" ~attempt)
  in
  Alcotest.(check (list string)) "capped exponential"
    [ "2"; "4"; "8"; "16"; "16" ]
    (List.map backoff [ 1; 2; 3; 4; 5 ]);
  let jittered = Fault.Resilience.make () in
  List.iter
    (fun attempt ->
      let plain =
        Fault.Injector.backoff injector policy ~agent:"a" ~attempt
      in
      let b = Fault.Injector.backoff injector jittered ~agent:"a" ~attempt in
      let again =
        Fault.Injector.backoff injector jittered ~agent:"a" ~attempt
      in
      Alcotest.(check string)
        (Printf.sprintf "attempt %d: jitter is deterministic" attempt)
        (Q.to_string b) (Q.to_string again);
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d: jitter within [b, 1.5b]" attempt)
        true
        (Q.ge b plain && Q.le b (Q.add plain (Q.div plain (q 2)))))
    [ 1; 2; 3; 4 ]

let test_resilience_validation () =
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  expect_invalid "negative retries" (fun () ->
      Fault.Resilience.make ~max_retries:(-1) ());
  expect_invalid "zero factor" (fun () ->
      Fault.Resilience.make ~backoff_factor:0 ())

(* --- injector coins --- *)

let heavy_plan seed =
  Fault.Plan.of_name "heavy" ~seed ~servers:[ "s1"; "s2"; "s3" ] ~horizon:100

let test_injector_deterministic () =
  let a = Fault.Injector.create ~seed:42 (heavy_plan 42) in
  let b = Fault.Injector.create ~seed:42 (heavy_plan 42) in
  for t = 0 to 50 do
    let time = q t in
    Alcotest.(check bool)
      (Printf.sprintf "migration coin at %d" t)
      (Fault.Injector.migration_fails a ~agent:"m" ~dest:"s2" ~attempt:1 ~time)
      (Fault.Injector.migration_fails b ~agent:"m" ~dest:"s2" ~attempt:1 ~time);
    Alcotest.(check bool)
      (Printf.sprintf "channel coin at %d" t)
      (Fault.Injector.channel_fate a ~agent:"m" ~chan:"c" ~time
      = Fault.Injector.channel_fate b ~agent:"m" ~chan:"c" ~time)
      true;
    Alcotest.(check bool)
      (Printf.sprintf "signal coin at %d" t)
      (Fault.Injector.signal_lost a ~agent:"m" ~signal:"x" ~time)
      (Fault.Injector.signal_lost b ~agent:"m" ~signal:"x" ~time)
  done

let test_injector_seed_matters () =
  let a = Fault.Injector.create ~seed:1 (heavy_plan 1) in
  let b = Fault.Injector.create ~seed:2 (heavy_plan 2) in
  let differs = ref false in
  for t = 0 to 200 do
    let time = q t in
    if
      Fault.Injector.migration_fails a ~agent:"m" ~dest:"s2" ~attempt:1 ~time
      <> Fault.Injector.migration_fails b ~agent:"m" ~dest:"s2" ~attempt:1
           ~time
    then differs := true
  done;
  Alcotest.(check bool) "different seeds produce different schedules" true
    !differs

let test_injector_attempts_independent () =
  (* retries of the same hop are fresh coins: under a heavy plan some
     attempt numbers succeed where others fail *)
  let inj = Fault.Injector.create ~seed:3 (heavy_plan 3) in
  let outcomes =
    List.init 50 (fun attempt ->
        Fault.Injector.migration_fails inj ~agent:"m" ~dest:"s2"
          ~attempt:(attempt + 1) ~time:(q 10))
  in
  Alcotest.(check bool) "not all attempts agree" true
    (List.exists (fun b -> b) outcomes
    && List.exists (fun b -> not b) outcomes)

(* --- invariant checker --- *)

let decision ~t ~server verdict =
  Obs.Trace.Decision
    {
      time = q t;
      object_id = "a1";
      access = Sral.Access.read "db" ~at:server;
      verdict;
    }

let test_invariant_fail_closed () =
  let plan =
    Fault.Plan.make
      ~crashes:[ ("s1", [ { Fault.Plan.from_ = q 5; until = q 10 } ]) ]
      ()
  in
  let ok_events =
    [
      decision ~t:3 ~server:"s1" Obs.Verdict.Granted;
      decision ~t:7 ~server:"s1"
        (Obs.Verdict.Denied (Obs.Verdict.Server_unavailable "s1"));
      decision ~t:7 ~server:"s2" Obs.Verdict.Granted;
      decision ~t:10 ~server:"s1" Obs.Verdict.Granted;
    ]
  in
  Alcotest.(check int) "denials and out-of-window grants pass" 0
    (List.length (Fault.Invariant.fail_closed ~plan ok_events));
  let bad = decision ~t:7 ~server:"s1" Obs.Verdict.Granted in
  match Fault.Invariant.fail_closed ~plan (ok_events @ [ bad ]) with
  | [ v ] ->
      Alcotest.(check string) "names the object" "a1"
        v.Fault.Invariant.subject;
      Alcotest.(check string) "at the granted time" "7"
        (Q.to_string v.Fault.Invariant.time)
  | vs -> Alcotest.failf "expected exactly one violation, got %d"
            (List.length vs)

let test_invariant_retries_resolve () =
  let retry ~t ~agent ~attempt =
    Obs.Trace.Retry_scheduled
      { time = q t; agent; attempt; at = q (t + 2) }
  in
  let resolved =
    [
      retry ~t:1 ~agent:"a1" ~attempt:1;
      Obs.Trace.Migrated
        { time = q 3; agent = "a1"; from_ = "s1"; to_ = "s2" };
      retry ~t:4 ~agent:"a2" ~attempt:1;
      Obs.Trace.Gave_up { time = q 9; agent = "a2"; attempts = 4 };
    ]
  in
  Alcotest.(check int) "migration or give-up resolves" 0
    (List.length (Fault.Invariant.retries_resolve resolved));
  let stranded = [ retry ~t:5 ~agent:"a3" ~attempt:2 ] in
  match Fault.Invariant.retries_resolve stranded with
  | [ v ] ->
      Alcotest.(check string) "names the stranded agent" "a3"
        v.Fault.Invariant.subject
  | vs ->
      Alcotest.failf "expected exactly one violation, got %d" (List.length vs)

let test_invariant_determinism_compare () =
  (match Fault.Invariant.determinism "a\nb\n" "a\nb\n" with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "identical inputs rejected: %s" msg);
  match Fault.Invariant.determinism "a\nb\nc\n" "a\nX\nc\n" with
  | Ok () -> Alcotest.fail "differing inputs accepted"
  | Error msg ->
      Alcotest.(check string) "error names line 2"
        "exports differ at line 2" msg

(* --- whole chaos runs --- *)

let test_chaos_runs_deterministic () =
  List.iter
    (fun (plan_name, seed) ->
      let export () =
        Scenarios.Chaos.export (Scenarios.Chaos.run ~plan_name ~seed ())
      in
      match Fault.Invariant.determinism (export ()) (export ()) with
      | Ok () -> ()
      | Error msg ->
          Alcotest.failf "%s/%d not reproducible: %s" plan_name seed msg)
    [ ("none", 1); ("light", 2); ("moderate", 42); ("heavy", 7) ]

let test_chaos_modes_agree_on_decisions () =
  (* the decision mode is a cache strategy, not a policy: both modes
     must reach identical verdict counts under the same fault plan *)
  let counts mode =
    let m =
      (Scenarios.Chaos.run ~mode ~plan_name:"moderate" ~seed:42 ())
        .Scenarios.Chaos.metrics
    in
    (m.Naplet.Metrics.granted, m.Naplet.Metrics.denied,
     m.Naplet.Metrics.denied_unavailable, m.Naplet.Metrics.gave_up)
  in
  Alcotest.(check bool) "naive = indexed" true
    (counts Coordinated.System.Naive = counts Coordinated.System.Indexed)

(* Satellite: the fail-closed property fuzzed over 200 seeded
   coalitions — no Granted decision ever targets a server inside one of
   its crash windows, and every scheduled retry resolves. *)
let test_chaos_fuzz_fail_closed () =
  let plans = [| "light"; "moderate"; "heavy" |] in
  Gen.each_seed ~count:200 (fun ~seed _rng ->
      let plan_name = plans.(seed mod Array.length plans) in
      let couriers = 2 + (seed mod 5) in
      let report = Scenarios.Chaos.run ~plan_name ~seed ~couriers () in
      match report.Scenarios.Chaos.violations with
      | [] -> ()
      | vs ->
          Alcotest.failf "seed %d (%s, %d couriers): %a" seed plan_name
            couriers
            (Format.pp_print_list Fault.Invariant.pp_violation)
            vs)

(* The workflow family under chaos: Fault.Plan over workflow runs.
   (a) Same workflow + same assignment ⇒ byte-identical exported
   traces; (b) the per-slot fail-closed law — a task whose server is
   inside a crash window at its decision slot is denied
   Server_unavailable, and a granted task's server was up. *)
let test_workflow_chaos () =
  let module W = Scenarios.Workflow_family in
  Gen.each_seed ~salt:7790 ~count:40 (fun ~seed rng ->
      let wf = W.adversarial ~faults:true rng in
      let ids = Array.of_list (List.map (fun (p : W.performer) -> p.W.id) wf.W.performers) in
      let asg =
        List.mapi
          (fun k (tk : W.task) -> (tk.W.name, ids.(k mod Array.length ids)))
          wf.W.tasks
      in
      let outcome = W.run wf asg in
      let outcome' = W.run wf asg in
      (match
         Fault.Invariant.determinism
           (Obs.Export.to_string outcome.W.raw.Parallel.Scenario.trace)
           (Obs.Export.to_string outcome'.W.raw.Parallel.Scenario.trace)
       with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "seed %d: workflow run not reproducible: %s" seed msg);
      List.iteri
        (fun k (r : W.task_result) ->
          let tk = List.nth wf.W.tasks k in
          let down =
            match wf.W.plan with
            | None -> false
            | Some plan ->
                Fault.Plan.server_down plan
                  ~server:tk.W.access.Sral.Access.server ~time:(W.slot k)
          in
          match (down, r.W.verdict) with
          | true, Coordinated.Decision.Denied (Coordinated.Decision.Server_unavailable _)
            -> ()
          | true, v ->
              Alcotest.failf
                "seed %d task %s: server down at slot %d but verdict %a" seed
                r.W.task k Coordinated.Decision.pp_verdict v
          | false, Coordinated.Decision.Denied (Coordinated.Decision.Server_unavailable s)
            ->
              Alcotest.failf
                "seed %d task %s: server %s up at its slot but denied \
                 unavailable"
                seed r.W.task s
          | false, _ -> ())
        outcome.W.results)

let () =
  Alcotest.run "fault"
    [
      ( "prng",
        [
          Alcotest.test_case "stream deterministic" `Quick
            test_prng_stream_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "uniform order-independent" `Quick
            test_prng_uniform_order_independent;
          Alcotest.test_case "keyed substreams" `Quick
            test_prng_keyed_substreams_independent;
        ] );
      ( "plan",
        [
          Alcotest.test_case "of_name deterministic" `Quick
            test_plan_of_name_deterministic;
          Alcotest.test_case "substreams stable under growth" `Quick
            test_plan_substreams_stable_under_growth;
          Alcotest.test_case "windows well-formed" `Quick
            test_plan_windows_well_formed;
          Alcotest.test_case "validation" `Quick test_plan_validation;
          Alcotest.test_case "window queries" `Quick test_plan_window_queries;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "backoff values" `Quick test_backoff_values;
          Alcotest.test_case "validation" `Quick test_resilience_validation;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "seed matters" `Quick test_injector_seed_matters;
          Alcotest.test_case "attempts independent" `Quick
            test_injector_attempts_independent;
        ] );
      ( "invariant",
        [
          Alcotest.test_case "fail-closed" `Quick test_invariant_fail_closed;
          Alcotest.test_case "retries resolve" `Quick
            test_invariant_retries_resolve;
          Alcotest.test_case "determinism compare" `Quick
            test_invariant_determinism_compare;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "same seed, same bytes" `Quick
            test_chaos_runs_deterministic;
          Alcotest.test_case "modes agree on decisions" `Quick
            test_chaos_modes_agree_on_decisions;
          Alcotest.test_case "fail-closed over 200 fuzz coalitions" `Slow
            test_chaos_fuzz_fail_closed;
          Alcotest.test_case "workflows: deterministic and fail-closed" `Quick
            test_workflow_chaos;
        ] );
    ]
