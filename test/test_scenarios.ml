(* Tests for the three paper scenarios: the Figure 1 integrity audit
   (Section 6), the license guard (intro + Example 3.5) and the
   newspaper deadline (intro, Section 4 schemes). *)

module Q = Temporal.Q

(* --- integrity audit (Figure 1) --- *)

let test_fig1_graph_shape () =
  let g = Scenarios.Integrity_audit.module_graph () in
  Alcotest.(check int) "11 modules" 11 (Digraph.vertex_count g);
  Alcotest.(check bool) "acyclic" true (Digraph.is_dag g);
  (* k is the common sink *)
  Alcotest.(check (list string)) "k depends on nothing" []
    (Digraph.successors g "k");
  Alcotest.(check int) "3 servers" 3
    (List.length
       (List.sort_uniq String.compare
          (List.map snd Scenarios.Integrity_audit.placement)))

let test_fig1_constraints_cover_dependencies () =
  let g = Scenarios.Integrity_audit.module_graph () in
  let constraints = Scenarios.Integrity_audit.dependency_constraints () in
  (* one constraint per module with outgoing dependencies *)
  let with_deps =
    List.filter (fun v -> Digraph.successors g v <> []) (Digraph.vertices g)
  in
  Alcotest.(check int) "constraint count" (List.length with_deps)
    (List.length constraints)

let test_audit_ordered_run () =
  let r = Scenarios.Integrity_audit.run () in
  Alcotest.(check int) "all granted" 11 r.Scenarios.Integrity_audit.granted;
  Alcotest.(check int) "none denied" 0 r.Scenarios.Integrity_audit.denied;
  Alcotest.(check bool) "all verified" true
    r.Scenarios.Integrity_audit.all_verified;
  Alcotest.(check bool) "no deadline issue" false
    r.Scenarios.Integrity_audit.deadline_hit;
  (* all hashes match the pristine reference *)
  let expected = Scenarios.Integrity_audit.expected_hashes () in
  List.iter
    (fun (m, h) ->
      Alcotest.(check string) ("hash of " ^ m) (List.assoc m expected) h)
    r.Scenarios.Integrity_audit.hashes

let test_audit_tampered_order_denied () =
  let r = Scenarios.Integrity_audit.run ~respect_order:false () in
  Alcotest.(check bool) "not all verified" false
    r.Scenarios.Integrity_audit.all_verified;
  (* only dependency-free modules can be hashed out of order; the Fig. 1
     graph has exactly one (k) *)
  Alcotest.(check int) "one granted" 1 r.Scenarios.Integrity_audit.granted;
  Alcotest.(check int) "rest denied" 10 r.Scenarios.Integrity_audit.denied

let test_audit_deadline () =
  let tight = Scenarios.Integrity_audit.run ~deadline:(Q.of_int 6) () in
  Alcotest.(check bool) "deadline hit" true
    tight.Scenarios.Integrity_audit.deadline_hit;
  Alcotest.(check bool) "incomplete" false
    tight.Scenarios.Integrity_audit.all_verified;
  let loose = Scenarios.Integrity_audit.run ~deadline:(Q.of_int 100) () in
  Alcotest.(check bool) "loose deadline ok" true
    loose.Scenarios.Integrity_audit.all_verified;
  Alcotest.(check bool) "no expiry" false
    loose.Scenarios.Integrity_audit.deadline_hit

let test_audit_detects_tampered_contents () =
  let r = Scenarios.Integrity_audit.run ~tamper_contents:[ "g"; "c" ] () in
  let expected = Scenarios.Integrity_audit.expected_hashes () in
  let mismatching =
    List.sort String.compare
      (List.filter_map
         (fun (m, h) ->
           if String.equal (List.assoc m expected) h then None else Some m)
         r.Scenarios.Integrity_audit.hashes)
  in
  Alcotest.(check (list string)) "exactly the corrupted modules"
    [ "c"; "g" ] mismatching

(* --- license guard --- *)

let test_license_overuse_locks_s2 () =
  let o = Scenarios.License_guard.run () in
  Alcotest.(check int) "s1 grants all" 7 o.Scenarios.License_guard.granted_s1;
  Alcotest.(check int) "s2 grants none" 0 o.Scenarios.License_guard.granted_s2;
  Alcotest.(check bool) "locked out" true o.Scenarios.License_guard.s2_locked_out

let test_license_moderate_use_keeps_s2 () =
  let o = Scenarios.License_guard.run ~s1_uses:3 () in
  Alcotest.(check int) "s1" 3 o.Scenarios.License_guard.granted_s1;
  Alcotest.(check int) "s2 open" 3 o.Scenarios.License_guard.granted_s2;
  Alcotest.(check bool) "not locked" false
    o.Scenarios.License_guard.s2_locked_out

let test_license_boundary () =
  (* exactly at the limit: still allowed *)
  let o = Scenarios.License_guard.run ~s1_uses:5 () in
  Alcotest.(check bool) "boundary open" false
    o.Scenarios.License_guard.s2_locked_out;
  (* one past the limit: locked *)
  let o2 = Scenarios.License_guard.run ~s1_uses:6 () in
  Alcotest.(check bool) "over boundary locked" true
    o2.Scenarios.License_guard.s2_locked_out

let test_license_global_limit () =
  let o = Scenarios.License_guard.run ~s1_uses:4 ~s2_uses:3 ~global_limit:5 () in
  Alcotest.(check int) "s1 within" 4 o.Scenarios.License_guard.granted_s1;
  Alcotest.(check int) "s2 gets remainder" 1
    o.Scenarios.License_guard.granted_s2;
  Alcotest.(check int) "excess denied" 2 o.Scenarios.License_guard.denied

(* --- newspaper deadline --- *)

let test_newspaper_journey_deadline () =
  let o = Scenarios.Newspaper.run () in
  Alcotest.(check int) "attempted" 8 o.Scenarios.Newspaper.edits_attempted;
  Alcotest.(check int) "granted before 3am" 5
    o.Scenarios.Newspaper.edits_granted;
  Alcotest.(check int) "denied after" 3 o.Scenarios.Newspaper.edits_denied;
  (match o.Scenarios.Newspaper.last_granted_at with
  | Some t -> Alcotest.(check bool) "last grant before 27" true (Q.lt t (Q.of_int 27))
  | None -> Alcotest.fail "some edit granted");
  match o.Scenarios.Newspaper.first_denied_at with
  | Some t ->
      Alcotest.(check bool) "first denial at/after 27" true
        (Q.ge t (Q.of_int 27))
  | None -> Alcotest.fail "some edit denied"

let test_newspaper_per_server_resets () =
  (* the contrast of Section 4's two schemes: per-server base time
     resets the budget at the mid-session migration *)
  let o = Scenarios.Newspaper.run ~scheme:Temporal.Validity.Per_server () in
  Alcotest.(check int) "all granted" 8 o.Scenarios.Newspaper.edits_granted;
  Alcotest.(check int) "none denied" 0 o.Scenarios.Newspaper.edits_denied

let test_newspaper_no_migration_same_result () =
  (* without migration, both schemes agree *)
  let j =
    Scenarios.Newspaper.run ~migrate_midway:false
      ~scheme:Temporal.Validity.Whole_journey ()
  in
  let p =
    Scenarios.Newspaper.run ~migrate_midway:false
      ~scheme:Temporal.Validity.Per_server ()
  in
  Alcotest.(check int) "same grants"
    j.Scenarios.Newspaper.edits_granted p.Scenarios.Newspaper.edits_granted

let test_newspaper_earlier_start_more_edits () =
  let early = Scenarios.Newspaper.run ~session_start:(Q.of_int 20) () in
  let late = Scenarios.Newspaper.run ~session_start:(Q.of_int 25) () in
  Alcotest.(check bool) "earlier start edits more" true
    (early.Scenarios.Newspaper.edits_granted
    > late.Scenarios.Newspaper.edits_granted)

(* --- parallel audit (ApplAgentProg) --- *)

let test_parallel_audit_meets_deadline () =
  (* 3 clones beat a deadline a single agent misses *)
  let deadline = Q.of_int 15 in
  let parallel = Scenarios.Integrity_audit.run_parallel ~clones:3 ~deadline () in
  let single = Scenarios.Integrity_audit.run ~deadline () in
  Alcotest.(check bool) "parallel verifies" true
    parallel.Scenarios.Integrity_audit.base.Scenarios.Integrity_audit.all_verified;
  Alcotest.(check bool) "single misses" false
    single.Scenarios.Integrity_audit.all_verified;
  Alcotest.(check int) "clones used" 3
    parallel.Scenarios.Integrity_audit.clones_used;
  Alcotest.(check int) "all reports home" 3
    parallel.Scenarios.Integrity_audit.reports_collected

let test_parallel_audit_no_deadline () =
  let r = Scenarios.Integrity_audit.run_parallel ~clones:2 () in
  Alcotest.(check bool) "verified" true
    r.Scenarios.Integrity_audit.base.Scenarios.Integrity_audit.all_verified;
  Alcotest.(check int) "granted all" 11
    r.Scenarios.Integrity_audit.base.Scenarios.Integrity_audit.granted

(* --- teamwork (companions) --- *)

let test_teamwork_shared_proofs () =
  let o = Scenarios.Teamwork.run () in
  Alcotest.(check int) "scout read" 1 o.Scenarios.Teamwork.scout_reads;
  Alcotest.(check int) "courier committed" 1
    o.Scenarios.Teamwork.courier_commits;
  Alcotest.(check bool) "team succeeded" true
    o.Scenarios.Teamwork.team_succeeded

let test_teamwork_own_proofs_denied () =
  let o = Scenarios.Teamwork.run ~share_proofs:false () in
  Alcotest.(check int) "courier denied" 1 o.Scenarios.Teamwork.courier_denied;
  Alcotest.(check bool) "team failed" false
    o.Scenarios.Teamwork.team_succeeded

(* --- editorial workflow --- *)

let test_workflow_honest () =
  let o = Scenarios.Workflow.run () in
  Alcotest.(check bool) "drafted" true o.Scenarios.Workflow.drafted;
  Alcotest.(check bool) "reviewed" true o.Scenarios.Workflow.reviewed;
  Alcotest.(check bool) "published" true o.Scenarios.Workflow.published;
  Alcotest.(check int) "no denials" 0 o.Scenarios.Workflow.denied;
  Alcotest.(check bool) "all agents completed" true
    o.Scenarios.Workflow.all_completed

let test_workflow_dsd_blocks_cheater () =
  let o = Scenarios.Workflow.run ~cheat:true () in
  Alcotest.(check bool) "drafted" true o.Scenarios.Workflow.drafted;
  Alcotest.(check bool) "reviewed" true o.Scenarios.Workflow.reviewed;
  Alcotest.(check bool) "publish blocked" false o.Scenarios.Workflow.published;
  Alcotest.(check bool) "at least one denial" true
    (o.Scenarios.Workflow.denied >= 1)

let test_workflow_deadline () =
  let o = Scenarios.Workflow.run ~deadline:(Q.make 1 100) () in
  Alcotest.(check bool) "stages before publish fine" true
    (o.Scenarios.Workflow.drafted && o.Scenarios.Workflow.reviewed);
  Alcotest.(check bool) "publish expired" false o.Scenarios.Workflow.published

let () =
  Alcotest.run "scenarios"
    [
      ( "integrity-audit",
        [
          Alcotest.test_case "figure 1 shape" `Quick test_fig1_graph_shape;
          Alcotest.test_case "constraints cover deps" `Quick
            test_fig1_constraints_cover_dependencies;
          Alcotest.test_case "ordered run" `Quick test_audit_ordered_run;
          Alcotest.test_case "tampered order" `Quick
            test_audit_tampered_order_denied;
          Alcotest.test_case "deadline" `Quick test_audit_deadline;
          Alcotest.test_case "tampered contents" `Quick
            test_audit_detects_tampered_contents;
        ] );
      ( "parallel-audit",
        [
          Alcotest.test_case "meets deadline" `Quick
            test_parallel_audit_meets_deadline;
          Alcotest.test_case "no deadline" `Quick test_parallel_audit_no_deadline;
        ] );
      ( "workflow",
        [
          Alcotest.test_case "honest" `Quick test_workflow_honest;
          Alcotest.test_case "dsd blocks cheater" `Quick
            test_workflow_dsd_blocks_cheater;
          Alcotest.test_case "deadline" `Quick test_workflow_deadline;
        ] );
      ( "teamwork",
        [
          Alcotest.test_case "shared proofs" `Quick test_teamwork_shared_proofs;
          Alcotest.test_case "own proofs denied" `Quick
            test_teamwork_own_proofs_denied;
        ] );
      ( "license-guard",
        [
          Alcotest.test_case "overuse locks s2" `Quick
            test_license_overuse_locks_s2;
          Alcotest.test_case "moderate use" `Quick
            test_license_moderate_use_keeps_s2;
          Alcotest.test_case "boundary" `Quick test_license_boundary;
          Alcotest.test_case "global limit" `Quick test_license_global_limit;
        ] );
      ( "newspaper",
        [
          Alcotest.test_case "journey deadline" `Quick
            test_newspaper_journey_deadline;
          Alcotest.test_case "per-server resets" `Quick
            test_newspaper_per_server_resets;
          Alcotest.test_case "no migration" `Quick
            test_newspaper_no_migration_same_result;
          Alcotest.test_case "earlier start" `Quick
            test_newspaper_earlier_start_more_edits;
        ] );
    ]
