(* Tests for the semantic policy analyzer (lib/analysis) and the
   Srac.Decide decision procedures it is built on.

   The heart of this file is the replay oracle: randomized coalitions
   where every analyzer claim is checked against the *runtime* — a
   finding that says "this binding can never grant" is refuted by
   replaying every performable walk of the world through the real
   decision pipeline and watching for a grant.  The analyzer is allowed
   to miss defects; it is never allowed to invent one. *)

module Q = Temporal.Q
module A = Sral.Access
module F = Srac.Formula
module PB = Coordinated.Perm_binding
module PL = Coordinated.Policy_lang
module W = Analysis.World
module An = Analysis.Analyzer
module Sf = Analysis.Safety
module PR = Scenarios.Policy_review

let granted = function
  | Coordinated.Decision.Granted -> true
  | Coordinated.Decision.Denied _ -> false

let last tr = List.nth tr (List.length tr - 1)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* cwd is test/ under `dune runtest` but the workspace root under
   `dune exec test/...` — accept either *)
let fixture name =
  let candidates =
    [ "../examples/policies/" ^ name; "examples/policies/" ^ name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> read_file p
  | None -> Alcotest.failf "fixture %s not found" name

(* ------------------------------------------------------------------ *)
(* Srac.Decide: the closure-alphabet decision procedures               *)
(* ------------------------------------------------------------------ *)

let c s = F.of_string s

let test_decide_satisfiability () =
  Alcotest.(check bool)
    "semantic contradiction caught" false
    (Srac.Decide.satisfiable (c "done(read db @ s1) && !done(read db @ s1)"));
  Alcotest.(check bool)
    "empty cardinality window caught" false
    (Srac.Decide.satisfiable (c "count(2, 1, any)"));
  (* mentions no access at all, yet satisfiable over a larger
     alphabet — the reason the closure alphabet exists *)
  Alcotest.(check bool)
    "selector-only constraint satisfiable" true
    (Srac.Decide.satisfiable (c "count(1, inf, srv=s9)"));
  Alcotest.(check bool)
    "tautology valid" true
    (Srac.Decide.valid (c "done(read db @ s1) or !done(read db @ s1)"));
  Alcotest.(check bool)
    "atom not valid" false
    (Srac.Decide.valid (c "done(read db @ s1)"))

let test_decide_inclusion () =
  Alcotest.(check bool)
    "atom implies its count" true
    (Srac.Decide.included (c "done(read db @ s1)") (c "count(1, inf, res=db)"));
  Alcotest.(check bool)
    "count does not imply the atom" false
    (Srac.Decide.included (c "count(1, inf, res=db)") (c "done(read db @ s1)"));
  Alcotest.(check bool)
    "ordering implies both atoms" true
    (Srac.Decide.included
       (c "seq(read a @ s1, read b @ s1)")
       (c "done(read a @ s1) && done(read b @ s1)"));
  Alcotest.(check bool)
    "conjunction order matters" false
    (Srac.Decide.included
       (c "done(read a @ s1) && done(read b @ s1)")
       (c "seq(read a @ s1, read b @ s1)"))

let test_decide_witness () =
  (* every satisfiable formula's witness must actually satisfy it *)
  List.iter
    (fun text ->
      let f = c text in
      match Srac.Decide.witness f with
      | None -> Alcotest.failf "no witness for satisfiable %s" text
      | Some tr ->
          Alcotest.(check bool)
            (Printf.sprintf "witness satisfies %s" text)
            true
            (Srac.Trace_sat.sat ~proofs:Srac.Proof.always tr f))
    [
      "done(read db @ s1)";
      "seq(read a @ s1, read b @ s2)";
      "count(2, inf, res=db) && !done(read db @ s1)";
      "count(1, 1, srv=s9) or done(write log @ s2)";
    ];
  Alcotest.(check bool)
    "unsatisfiable has no witness" true
    (Srac.Decide.witness (c "count(3, 2, any)") = None)

(* ------------------------------------------------------------------ *)
(* World: itineraries, walks, performability                           *)
(* ------------------------------------------------------------------ *)

let test_world_walks_are_performable () =
  let universe =
    [ A.read "x" ~at:"s1"; A.read "y" ~at:"s2"; A.write "x" ~at:"s1" ]
  in
  (* one-way topology: s1 -> s2, enter only at s1 *)
  let w =
    W.make
      ~links:[ ("s1", "s2") ]
      ~entries:[ "s1" ] ~servers:[ "s1"; "s2" ] ~universe ()
  in
  let walks = W.walks w ~max_len:2 in
  List.iter
    (fun tr ->
      Alcotest.(check bool)
        (Printf.sprintf "walk performable: %s" (Sral.Trace.to_string tr))
        true (W.performable w tr))
    walks;
  (* exhaustive agreement: every universe trace of length <= 2 is in
     the walk list iff it is performable *)
  let mem tr = List.exists (Sral.Trace.equal tr) walks in
  List.iter
    (fun a ->
      Alcotest.(check bool) "len-1 agreement" (W.performable w [ a ]) (mem [ a ]);
      List.iter
        (fun b ->
          Alcotest.(check bool) "len-2 agreement"
            (W.performable w [ a; b ])
            (mem [ a; b ]))
        universe)
    universe;
  (* the one-way link forbids coming back *)
  Alcotest.(check bool)
    "s2 cannot reach s1" false
    (W.performable w [ A.read "y" ~at:"s2"; A.read "x" ~at:"s1" ])

let test_world_of_policy_defective () =
  let w = PR.defective_world () in
  Alcotest.(check (list string)) "servers" [ "s1"; "s2" ] w.W.servers;
  (* the constraint-only server s9 must NOT be deployed, and the
     access it hosts must not be performable *)
  Alcotest.(check bool)
    "vault@s9 not performable" false
    (W.performable w [ A.read "vault" ~at:"s9" ]);
  Alcotest.(check bool)
    "cfg@s1 performable" true
    (W.performable w [ A.read "cfg" ~at:"s1" ])

(* ------------------------------------------------------------------ *)
(* The committed fixtures: exact findings, exact bytes                 *)
(* ------------------------------------------------------------------ *)

let test_defective_findings () =
  let report = An.analyze ~world:(PR.defective_world ()) (PR.defective ()) in
  Alcotest.(check int) "bindings" 6 report.An.bindings;
  Alcotest.(check bool) "not truncated" false report.An.truncated;
  Alcotest.(check bool)
    "findings are exactly the expected five" true
    (report.An.findings = PR.defective_expected ())

let test_defective_jsonl_matches_committed () =
  let report = An.analyze ~world:(PR.defective_world ()) (PR.defective ()) in
  Alcotest.(check string) "defective.expected is the analyzer's output"
    (fixture "defective.expected")
    (Analysis.Report.to_jsonl report)

let test_fixture_files_match_generators () =
  (* the committed policy files are generated; drift between the file
     and the generator silently invalidates the CI smoke test *)
  Alcotest.(check string) "fig1.policy"
    (PR.fig1_text ())
    (fixture "fig1.policy");
  Alcotest.(check string) "defective.policy"
    (PR.defective_text ())
    (fixture "defective.policy")

let test_fig1_clean () =
  let report = An.analyze ~world:(PR.fig1_world ()) (PR.fig1 ()) in
  Alcotest.(check int) "bindings" 10 report.An.bindings;
  Alcotest.(check bool) "no findings" true (report.An.findings = [])

let test_fig1_witnesses_replay () =
  let parsed = PR.fig1 () in
  let world = PR.fig1_world () in
  let ws = An.witnesses ~world parsed in
  Alcotest.(check int) "every binding is exercisable" 10 (List.length ws);
  List.iter
    (fun (index, key, tr) ->
      let b = List.nth parsed.PL.bindings index in
      Alcotest.(check bool)
        (Printf.sprintf "witness %d ends with a covered access" index)
        true
        (PB.applies_to b (last tr));
      let v = Sf.replay ~world ~policy:parsed ~user:"auditor" ~trace:tr () in
      if not (granted v) then
        Alcotest.failf "witness for #%d (%s) denied: %s" index key
          (Sral.Trace.to_string tr))
    ws

(* ------------------------------------------------------------------ *)
(* Safety queries on the fixtures                                      *)
(* ------------------------------------------------------------------ *)

let test_can_acquire_defective () =
  let world = PR.defective_world () in
  let policy = PR.defective () in
  (* read:cfg@s1 is guarded by the healthy binding #0 (and the shadowed
     #3): acquirable, and the witness replays to a grant *)
  (match
     Sf.can_acquire ~world ~policy ~user:"carol"
       ~perm:(Rbac.Perm.make ~operation:"read" ~target:"cfg@s1")
       ~server:"s1"
   with
  | Sf.Acquirable w ->
      let tr = List.map fst w.Sf.steps in
      Alcotest.(check bool)
        "witness ends with the queried access" true
        (A.equal (last tr) (A.read "cfg" ~at:"s1"));
      Alcotest.(check bool)
        "witness replays to a grant" true
        (granted (Sf.replay ~world ~policy ~user:"carol" ~trace:tr ()))
  | v -> Alcotest.failf "read:cfg@s1: %a" Sf.pp_verdict v);
  (* read:db@s1 is guarded by the unsatisfiable binding #1: impossible,
     and the proof names the culprit *)
  (match
     Sf.can_acquire ~world ~policy ~user:"carol"
       ~perm:(Rbac.Perm.make ~operation:"read" ~target:"db@s1")
       ~server:"s1"
   with
  | Sf.Impossible (Sf.Unreachable { binding = Some b }) ->
      Alcotest.(check string) "culprit binding" "read:db@s1" b
  | v -> Alcotest.failf "read:db@s1: %a" Sf.pp_verdict v);
  (* an unknown principal is impossible before any automaton runs *)
  (match
     Sf.can_acquire ~world ~policy ~user:"mallory"
       ~perm:(Rbac.Perm.make ~operation:"read" ~target:"cfg@s1")
       ~server:"s1"
   with
  | Sf.Impossible (Sf.Not_authorized { user }) ->
      Alcotest.(check string) "names the user" "mallory" user
  | _ -> Alcotest.fail "mallory should be Not_authorized");
  (* wildcard queries are a caller bug *)
  Alcotest.check_raises "wildcard perm rejected"
    (Invalid_argument "Safety.can_acquire: operation and resource must be concrete")
    (fun () ->
      ignore
        (Sf.can_acquire ~world ~policy ~user:"carol"
           ~perm:(Rbac.Perm.make ~operation:"read" ~target:"*@s1")
           ~server:"s1"))

(* ------------------------------------------------------------------ *)
(* Lint: declaration indexes and stable finding order                  *)
(* ------------------------------------------------------------------ *)

let test_lint_indexed_stable_order () =
  let parsed =
    PL.parse
      (String.concat "\n"
         [
           "user u";
           "role maker";
           "role lonely";
           "assign u maker";
           "grant maker read:db@s1";
           (* #0: semantically unsatisfiable (no literal 'false'), and
              no role grants write — two findings on one binding *)
           "bind write:db@s1 spatial \"done(read db @ s1) && count(0,0,res=db)\"";
           "bind read:db@s1 dur 0";
           "bind read:db@s1 spatial \"count(0,inf,any)\"";
         ])
  in
  let expected =
    String.concat "\n"
      [
        "binding #0 (write:db@s1): spatial constraint is unsatisfiable — \
         the permission can never be granted";
        "binding #0 (write:db@s1): no role grants a matching permission — \
         binding never applies";
        "binding #1 (read:db@s1): validity duration is zero — permanently \
         expired";
        "binding #2 (read:db@s1): spatial constraint is trivially true — \
         dead weight";
        "role lonely: grants no permissions";
        "role lonely: assigned to no user";
      ]
  in
  Alcotest.(check string) "exact lint output, stable order" expected
    (Coordinated.Lint.to_string (Coordinated.Lint.check parsed))

(* ------------------------------------------------------------------ *)
(* The replay oracle: randomized coalitions                            *)
(* ------------------------------------------------------------------ *)

(* The randomized universe/world/formula/binding generators live in the
   shared [test/gen.ml] so every randomized suite draws from the same
   distributions (and honours STACC_TEST_SEED). *)
let pick = Gen.pick
let random_universe = Gen.universe
let random_world = Gen.world
let random_formula = Gen.formula
let random_binding = Gen.analysis_binding

(* user [u] holds *:*@* so RBAC never interferes: the oracle isolates
   the spatial/temporal layers the analyzer reasons about *)
let oracle_policy () =
  let p = Rbac.Policy.create () in
  Rbac.Policy.add_user p "u";
  Rbac.Policy.add_role p "worker";
  Rbac.Policy.assign_user p "u" "worker";
  Rbac.Policy.grant p "worker" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
  p

let oracle_runs = 300

(* Soundness of the per-binding findings: a binding flagged
   Unsatisfiable / Unexercisable / Temporal_excluded must never grant
   on any performable walk; a Vacuous flag means deleting the spatial
   clause changes no outcome. *)
let test_oracle_soundness () =
  let negatives = ref 0 and vacuous = ref 0 in
  Gen.each_seed ~salt:9001 ~count:oracle_runs (fun ~seed rng ->
    let universe = random_universe rng in
    let world = random_world rng universe in
    let b = random_binding rng universe in
    let parsed = { PL.policy = oracle_policy (); bindings = [ b ] } in
    let report = An.analyze ~world parsed in
    let grid = lazy (W.walks world ~max_len:3) in
    let covered tr = PB.applies_to b (last tr) in
    let replay bindings tr =
      granted (Sf.replay ~bindings ~world ~policy:parsed ~user:"u" ~trace:tr ())
    in
    List.iter
      (fun f ->
        match f with
        | An.Unsatisfiable _ | An.Unexercisable _ | An.Temporal_excluded _ ->
            incr negatives;
            List.iter
              (fun tr ->
                if covered tr && replay [ b ] tr then
                  Alcotest.failf
                    "seed %d: binding flagged dead yet granted on %s@.%a" seed
                    (Sral.Trace.to_string tr) PB.pp b)
              (Lazy.force grid)
        | An.Vacuous _ ->
            incr vacuous;
            let stripped = { b with PB.spatial = None } in
            List.iter
              (fun tr ->
                if
                  covered tr
                  && replay [ b ] tr <> replay [ stripped ] tr
                then
                  Alcotest.failf
                    "seed %d: vacuous spatial clause changed the verdict on %s"
                    seed
                    (Sral.Trace.to_string tr))
              (Lazy.force grid)
        | An.Shadowed _ ->
            Alcotest.failf "seed %d: shadow finding with a single binding" seed)
      report.An.findings);
  (* the oracle must actually have exercised the claims it guards *)
  Alcotest.(check bool)
    (Printf.sprintf "negative findings exercised (%d)" !negatives)
    true (!negatives > 50);
  Alcotest.(check bool)
    (Printf.sprintf "vacuity findings exercised (%d)" !vacuous)
    true (!vacuous > 5)

let shadow_runs = 150

(* Soundness of shadowing: removing the loser must not change any
   verdict, on any performable walk. *)
let test_oracle_shadowing () =
  let shadows = ref 0 in
  Gen.each_seed ~salt:9002 ~count:shadow_runs (fun ~seed rng ->
    let universe = random_universe rng in
    let world = random_world rng universe in
    let b0, b1 =
      if Random.State.bool rng then (
        (* shadow bait: a winner mentioning the pattern access and a
           strictly weaker loser on the same concrete pattern *)
        let a = pick rng universe in
        let base =
          match Random.State.int rng 3 with
          | 0 -> F.Atom a
          | 1 -> F.And (F.Atom a, random_formula rng universe 1)
          | _ -> F.Ordered (pick rng universe, a)
        in
        let concrete =
          Rbac.Perm.make
            ~operation:(A.operation_name a.A.op)
            ~target:(a.A.resource ^ "@" ^ a.A.server)
        in
        let scope =
          if Random.State.bool rng then PB.Performed else PB.Program
        in
        let same_key = Random.State.bool rng in
        let wperm =
          if same_key then concrete
          else
            Rbac.Perm.make ~operation:(A.operation_name a.A.op) ~target:"*@*"
        in
        let wdur =
          (* a duration on a same-key winner couples the loser into its
             activation slot — the analyzer must then stay silent *)
          if Random.State.int rng 3 = 0 then Some (Q.of_int 2) else None
        in
        ( PB.make ~spatial:base ~spatial_scope:scope ?dur:wdur wperm,
          PB.make
            ~spatial:(F.Or (base, random_formula rng universe 1))
            ~spatial_scope:scope concrete ))
      else (random_binding rng universe, random_binding rng universe)
    in
    let bindings = [ b0; b1 ] in
    let parsed = { PL.policy = oracle_policy (); bindings } in
    let report = An.analyze ~world parsed in
    List.iter
      (fun f ->
        match f with
        | An.Shadowed { index; _ } ->
            incr shadows;
            let keep = List.filteri (fun i _ -> i <> index) bindings in
            List.iter
              (fun tr ->
                let full =
                  granted
                    (Sf.replay ~bindings ~world ~policy:parsed ~user:"u"
                       ~trace:tr ())
                in
                let reduced =
                  granted
                    (Sf.replay ~bindings:keep ~world ~policy:parsed ~user:"u"
                       ~trace:tr ())
                in
                if full <> reduced then
                  Alcotest.failf
                    "seed %d: dropping shadowed binding #%d changed the \
                     verdict on %s"
                    seed index
                    (Sral.Trace.to_string tr))
              (W.walks world ~max_len:3)
        | _ -> ())
      report.An.findings);
  Alcotest.(check bool)
    (Printf.sprintf "shadow findings exercised (%d)" !shadows)
    true (!shadows > 10)

let query_runs = 100

(* Safety-query honesty: an Acquirable witness must replay to a grant;
   an Impossible verdict must deny on every performable walk ending
   with the queried access. *)
let test_oracle_queries () =
  let acquirable = ref 0 and impossible = ref 0 in
  Gen.each_seed ~salt:9003 ~count:query_runs (fun ~seed rng ->
    let universe = random_universe rng in
    let world = random_world rng universe in
    let bindings =
      if Random.State.bool rng then [ random_binding rng universe ]
      else [ random_binding rng universe; random_binding rng universe ]
    in
    let parsed = { PL.policy = oracle_policy (); bindings } in
    let a = pick rng universe in
    let user = if Random.State.int rng 10 = 0 then "ghost" else "u" in
    let perm =
      Rbac.Perm.make
        ~operation:(A.operation_name a.A.op)
        ~target:(a.A.resource ^ "@" ^ a.A.server)
    in
    match Sf.can_acquire ~world ~policy:parsed ~user ~perm ~server:a.A.server with
    | Sf.Acquirable w ->
        incr acquirable;
        if String.equal user "ghost" then
          Alcotest.failf "seed %d: unauthorized user acquired" seed;
        let tr = List.map fst w.Sf.steps in
        if not (A.equal (last tr) a) then
          Alcotest.failf "seed %d: witness ends with the wrong access" seed;
        if not (granted (Sf.replay ~world ~policy:parsed ~user ~trace:tr ()))
        then
          Alcotest.failf "seed %d: witness does not replay to a grant: %s"
            seed
            (Sral.Trace.to_string tr)
    | Sf.Impossible (Sf.Not_authorized { user = u }) ->
        if not (String.equal u "ghost" && String.equal user "ghost") then
          Alcotest.failf "seed %d: spurious Not_authorized for %s" seed u
    | Sf.Impossible _ ->
        incr impossible;
        List.iter
          (fun tr ->
            if
              A.equal (last tr) a
              && granted
                   (Sf.replay ~world ~policy:parsed ~user ~trace:tr ())
            then
              Alcotest.failf
                "seed %d: impossible verdict refuted by walk %s" seed
                (Sral.Trace.to_string tr))
          (W.walks world ~max_len:3)
    | Sf.Undetermined _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "acquirable verdicts exercised (%d)" !acquirable)
    true (!acquirable > 10);
  Alcotest.(check bool)
    (Printf.sprintf "impossible verdicts exercised (%d)" !impossible)
    true (!impossible > 10)

(* ------------------------------------------------------------------ *)
(* The workflow family through the analyzer                            *)
(* ------------------------------------------------------------------ *)

module WF = Scenarios.Workflow_family
module WSat = Scenarios.Workflow_sat

(* Analyzer ⇒ checker, cross-harness: plant a binding with a
   semantically contradictory spatial constraint over one task's
   access.  The analyzer must flag it Unsatisfiable on the deployed
   policy (same Policy_lang view the runtime uses), and because an
   unsatisfiable binding denies every access it applies to, the
   workflow satisfiability checker — and the brute-force oracle — must
   both find the workflow impossible. *)
let test_workflow_unsat_binding () =
  Gen.each_seed ~salt:6620 ~count:30 (fun ~seed rng ->
      let wf, _ = WF.satisfiable rng in
      let victim = List.hd wf.WF.tasks in
      let a = victim.WF.access in
      let contradiction = F.And (F.Atom a, F.Not (F.Atom a)) in
      let poison =
        PB.make ~spatial:contradiction
          ~spatial_scope:PB.Program
          (Rbac.Perm.make
             ~operation:(A.operation_name a.A.op)
             ~target:(a.A.resource ^ "@" ^ a.A.server))
      in
      let wf =
        WF.make ~users:wf.WF.users ~roles:wf.WF.roles ~grants:wf.WF.grants
          ~assignments:wf.WF.assignments
          ~bindings:(poison :: wf.WF.bindings)
          ~duties:wf.WF.duties ?plan:wf.WF.plan ~performers:wf.WF.performers
          ~tasks:wf.WF.tasks ()
      in
      let pl = { PL.policy = WF.policy_of wf; bindings = wf.WF.bindings } in
      let report = An.analyze pl in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: analyzer flags the poison binding" seed)
        true
        (List.exists
           (function An.Unsatisfiable { index = 0; _ } -> true | _ -> false)
           report.An.findings);
      (match WSat.check wf with
      | WSat.Impossible _ -> ()
      | WSat.Complete w ->
          Alcotest.failf
            "seed %d: unsatisfiable-binding workflow completed by %s" seed
            (String.concat "," (List.map (fun (t, p) -> t ^ "=" ^ p) w)));
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: brute force agrees" seed)
        true
        (WSat.brute_force wf = None))

(* Checker ⇒ safety, cross-harness: every access of a satisfiable
   workflow's witness is RBAC-granted for its performer's owner, so
   Safety.can_acquire in a fully-connected world must never call it
   Impossible — Impossible is a soundness claim ("no walk acquires")
   that a replayed runtime grant would refute. *)
let test_workflow_safety_cross_check () =
  Gen.each_seed ~salt:6621 ~count:10 (fun ~seed rng ->
      let wf, _ = WF.satisfiable rng in
      match WSat.check wf with
      | WSat.Impossible imp ->
          Alcotest.failf "seed %d: satisfiable family unsat: %s" seed
            (WSat.explain imp)
      | WSat.Complete witness ->
          let servers = [ "s1"; "s2" ] in
          let links =
            List.concat_map
              (fun x -> List.map (fun y -> (x, y)) servers)
              servers
          in
          let universe =
            List.sort_uniq A.compare
              (List.map (fun (tk : WF.task) -> tk.WF.access) wf.WF.tasks)
          in
          let world =
            W.make ~links ~entries:servers ~servers ~universe ()
          in
          let pl =
            { PL.policy = WF.policy_of wf; bindings = wf.WF.bindings }
          in
          List.iter
            (fun (task, pid) ->
              let tk =
                List.find
                  (fun (tk : WF.task) -> String.equal tk.WF.name task)
                  wf.WF.tasks
              in
              let p =
                List.find
                  (fun (p : WF.performer) -> String.equal p.WF.id pid)
                  wf.WF.performers
              in
              let perm =
                Rbac.Perm.make
                  ~operation:(A.operation_name tk.WF.access.A.op)
                  ~target:
                    (tk.WF.access.A.resource ^ "@" ^ tk.WF.access.A.server)
              in
              match
                Sf.can_acquire ~world ~policy:pl ~user:p.WF.owner ~perm
                  ~server:tk.WF.access.A.server
              with
              | Sf.Impossible _ ->
                  Alcotest.failf
                    "seed %d: runtime grants %s to %s but safety says \
                     impossible"
                    seed task pid
              | Sf.Acquirable _ | Sf.Undetermined _ -> ())
            witness)

(* ------------------------------------------------------------------ *)
(* Administrative safety: the symbolic reachability engine             *)
(* ------------------------------------------------------------------ *)

module Ad = Analysis.Admin
module AF = Scenarios.Admin_family

(* The committed fixture pair: a policy where nobody can read the
   database until an administrator fires the two ops in admin.ops.
   This is the exact scenario the CI smoke test runs through the
   binary. *)
let test_admin_fixture () =
  let base = PL.parse (fixture "admin.policy") in
  let schedule = Ad.parse_schedule (fixture "admin.ops") in
  let world = W.of_policy base in
  let perm = Rbac.Perm.make ~operation:"read" ~target:"db@s1" in
  let inst u = Ad.make ~base ~world ~schedule ~user:u ~perm ~server:"s1" in
  let o1 = Ad.check (inst "u1") in
  (match o1.Ad.verdict with
  | Ad.Leak { ops; witness } ->
      Alcotest.(check (list string))
        "minimal two-op escalation"
        [ "assign u1 clerk"; "grant clerk read:db@s1" ]
        (List.map Ad.op_to_string ops);
      let tr = List.map fst witness.Sf.steps in
      Alcotest.(check bool)
        "witness replays to a grant through the real system" true
        (granted (Ad.replay_witness (inst "u1") ops ~trace:tr))
  | v -> Alcotest.failf "u1 should leak: %a" Ad.pp_verdict v);
  (* no SSD/DSD anywhere, so the antichain engine must be engaged *)
  Alcotest.(check bool) "antichain enabled on SoD-free instance" true
    o1.Ad.stats.Ad.antichain;
  (match (Ad.check (inst "u2")).Ad.verdict with
  | Ad.Safe _ -> ()
  | v -> Alcotest.failf "u2 should be safe: %a" Ad.pp_verdict v);
  (* brute force agrees on both committed queries *)
  (match (Ad.brute_force (inst "u1")).Ad.verdict with
  | Ad.Leak _ -> ()
  | v -> Alcotest.failf "brute force misses the u1 leak: %a" Ad.pp_verdict v);
  match (Ad.brute_force (inst "u2")).Ad.verdict with
  | Ad.Safe _ -> ()
  | v -> Alcotest.failf "brute force flags u2: %a" Ad.pp_verdict v

let test_admin_schedule_roundtrip () =
  let s = Ad.parse_schedule (fixture "admin.ops") in
  let rendered = Ad.render_schedule s in
  Alcotest.(check string) "render is a parse fixed point" rendered
    (Ad.render_schedule (Ad.parse_schedule rendered));
  List.iter
    (fun op ->
      let line = Ad.op_to_string op in
      Alcotest.(check string) "op line round-trips" line
        (Ad.op_to_string (Ad.op_of_string line)))
    s.Ad.pool

let verdict_tag = function
  | Ad.Leak _ -> "leak"
  | Ad.Safe _ -> "safe"
  | Ad.Undetermined _ -> "undetermined"

(* The differential gate from the acceptance criteria: on the
   small-model corpus the symbolic engine and the explicit sequence
   enumeration must produce the same verdict constructor on every
   instance, every planted leak must be found, every planted
   sabotage must come back Safe, and every Leak witness must replay
   through the real Coordinated.System to a grant. *)
let test_admin_differential () =
  let leaks = ref 0 and safes = ref 0 in
  let run family ~salt ~count ~expect =
    Gen.each_seed ~salt ~count (fun ~seed rng ->
        let inst = AF.generate family rng in
        let sym = Ad.check inst in
        let brute = Ad.brute_force inst in
        if
          not
            (String.equal (verdict_tag sym.Ad.verdict)
               (verdict_tag brute.Ad.verdict))
        then
          Alcotest.failf "seed %d (%s): symbolic %a but brute force %a" seed
            (AF.family_name family) Ad.pp_verdict sym.Ad.verdict Ad.pp_verdict
            brute.Ad.verdict;
        (match expect with
        | Some tag when not (String.equal tag (verdict_tag sym.Ad.verdict)) ->
            Alcotest.failf "seed %d (%s): expected %s, got %a" seed
              (AF.family_name family) tag Ad.pp_verdict sym.Ad.verdict
        | _ -> ());
        match sym.Ad.verdict with
        | Ad.Leak { ops; witness } ->
            incr leaks;
            let tr = List.map fst witness.Sf.steps in
            if not (granted (Ad.replay_witness inst ops ~trace:tr)) then
              Alcotest.failf
                "seed %d (%s): leak witness does not replay to a grant" seed
                (AF.family_name family)
        | Ad.Safe _ -> incr safes
        | Ad.Undetermined _ -> ())
  in
  run AF.Reachable ~salt:9101 ~count:80 ~expect:(Some "leak");
  run AF.Sabotaged ~salt:9102 ~count:60 ~expect:(Some "safe");
  run AF.Adversarial ~salt:9103 ~count:120 ~expect:None;
  Alcotest.(check bool)
    (Printf.sprintf "leaks exercised (%d)" !leaks)
    true (!leaks >= 80);
  Alcotest.(check bool)
    (Printf.sprintf "safe verdicts exercised (%d)" !safes)
    true (!safes >= 60)

(* Replaying a leak witness emits one Policy_changed event per admin
   op on the system bus, each carrying the rendered op line and a
   strictly increasing policy version. *)
let test_admin_replay_emits_policy_changed () =
  let base = PL.parse (fixture "admin.policy") in
  let schedule = Ad.parse_schedule (fixture "admin.ops") in
  let world = W.of_policy base in
  let inst =
    Ad.make ~base ~world ~schedule ~user:"u1"
      ~perm:(Rbac.Perm.make ~operation:"read" ~target:"db@s1")
      ~server:"s1"
  in
  match (Ad.check inst).Ad.verdict with
  | Ad.Leak { ops; witness } ->
      let bus = Obs.Bus.create () in
      let seen = ref [] in
      Obs.Bus.subscribe bus
        (Obs.Sink.make ~name:"admin-test" (function
          | Obs.Trace.Policy_changed { op; version; _ } ->
              seen := (op, version) :: !seen
          | _ -> ()));
      let tr = List.map fst witness.Sf.steps in
      Alcotest.(check bool) "replay grants" true
        (granted (Ad.replay_witness ~bus inst ops ~trace:tr));
      let seen = List.rev !seen in
      Alcotest.(check (list string))
        "one event per op, in order"
        (List.map Ad.op_to_string ops)
        (List.map fst seen);
      let versions = List.map snd seen in
      Alcotest.(check bool) "versions strictly increase" true
        (List.for_all2 ( < ) versions (List.tl versions @ [ max_int ]))
  | v -> Alcotest.failf "fixture should leak: %a" Ad.pp_verdict v

let () =
  Alcotest.run "analysis"
    [
      ( "decide",
        [
          Alcotest.test_case "satisfiability and validity" `Quick
            test_decide_satisfiability;
          Alcotest.test_case "inclusion" `Quick test_decide_inclusion;
          Alcotest.test_case "witnesses satisfy" `Quick test_decide_witness;
        ] );
      ( "world",
        [
          Alcotest.test_case "walks are exactly the performable traces"
            `Quick test_world_walks_are_performable;
          Alcotest.test_case "of_policy excludes constraint-only servers"
            `Quick test_world_of_policy_defective;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "defective findings exact" `Quick
            test_defective_findings;
          Alcotest.test_case "defective JSONL matches committed expectation"
            `Quick test_defective_jsonl_matches_committed;
          Alcotest.test_case "policy files match their generators" `Quick
            test_fixture_files_match_generators;
          Alcotest.test_case "fig1 is clean" `Quick test_fig1_clean;
          Alcotest.test_case "fig1 witnesses replay to grants" `Quick
            test_fig1_witnesses_replay;
        ] );
      ( "safety",
        [
          Alcotest.test_case "can_acquire on the defective fixture" `Quick
            test_can_acquire_defective;
        ] );
      ( "lint",
        [
          Alcotest.test_case "indexed findings, stable order" `Quick
            test_lint_indexed_stable_order;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "flagged bindings never grant" `Quick
            test_oracle_soundness;
          Alcotest.test_case "shadowed bindings are redundant" `Quick
            test_oracle_shadowing;
          Alcotest.test_case "safety verdicts are honest" `Quick
            test_oracle_queries;
        ] );
      ( "workflows",
        [
          Alcotest.test_case "unsatisfiable binding sinks the workflow" `Quick
            test_workflow_unsat_binding;
          Alcotest.test_case "safety agrees witnesses are acquirable" `Quick
            test_workflow_safety_cross_check;
        ] );
      ( "admin",
        [
          Alcotest.test_case "fixture pair: leak and safe, both oracles"
            `Quick test_admin_fixture;
          Alcotest.test_case "schedule render/parse fixed point" `Quick
            test_admin_schedule_roundtrip;
          Alcotest.test_case "symbolic = brute force on the small-model corpus"
            `Quick test_admin_differential;
          Alcotest.test_case "witness replay emits Policy_changed" `Quick
            test_admin_replay_emits_policy_changed;
        ] );
    ]
