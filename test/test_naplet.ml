(* Tests for the Naplet emulation: event queue, channels, signals, the
   agent machine, itineraries and whole-world runs. *)

module Q = Temporal.Q

let q = Q.of_int
let prog = Sral.Parser.program

module Sim = Naplet.Sim

(* --- sim event queue --- *)

let test_sim_ordering () =
  let queue = Sim.create () in
  Sim.schedule queue ~time:(q 5) "late";
  Sim.schedule queue ~time:(q 1) "early";
  Sim.schedule queue ~time:(q 3) "mid";
  Alcotest.(check (option string)) "peek" (Some "1")
    (Option.map Q.to_string (Sim.peek_time queue));
  let order =
    List.filter_map (fun _ -> Option.map snd (Sim.pop queue)) [ (); (); () ]
  in
  Alcotest.(check (list string)) "time order" [ "early"; "mid"; "late" ] order;
  Alcotest.(check bool) "empty" true (Sim.is_empty queue)

let test_sim_fifo_at_equal_times () =
  let queue = Sim.create () in
  List.iter (fun s -> Sim.schedule queue ~time:(q 2) s) [ "a"; "b"; "c" ];
  let order =
    List.filter_map (fun _ -> Option.map snd (Sim.pop queue)) [ (); (); () ]
  in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] order

let test_sim_interleaved_ops () =
  let queue = Sim.create () in
  for i = 20 downto 1 do
    Sim.schedule queue ~time:(q i) i
  done;
  let rec drain acc =
    match Sim.pop queue with
    | Some (_, v) -> drain (v :: acc)
    | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" (List.init 20 (fun i -> i + 1))
    (drain [])

(* --- sim properties: the SoA heap against sorted-list oracles ---

   Seeded via Gen (STACC_TEST_SEED shifts the whole space); failing
   scripts are shrunk with Gen.shrink_list before reporting. *)

(* small rationals with non-trivial denominators, so distinct surface
   forms (1/2 vs 2/4 — Q.make normalizes both to the same key) and
   genuine cross-denominator comparisons both occur *)
let gen_time rng =
  Q.make (Random.State.int rng 8) (1 + Random.State.int rng 4)

let drain_values queue =
  let rec go acc =
    match Sim.pop queue with Some (_, v) -> go (v :: acc) | None -> List.rev acc
  in
  go []

(* Heap ordering + FIFO at equal times, in one property: popping
   everything equals a stable sort of the insertions by time. *)
let test_sim_pop_is_stable_sort () =
  Gen.each_seed ~salt:7070 ~count:100 (fun ~seed rng ->
      let n = 50 + Random.State.int rng 150 in
      let entries = List.init n (fun i -> (gen_time rng, i)) in
      let queue = Sim.create () in
      List.iter (fun (t, i) -> Sim.schedule queue ~time:t i) entries;
      let expected =
        List.map snd
          (List.stable_sort (fun (t1, _) (t2, _) -> Q.compare t1 t2) entries)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: stable sort by time" seed)
        expected (drain_values queue))

(* Random schedule/pop interleavings against a sorted-list oracle that
   also checks the popped times themselves. *)
let pp_sim_op ppf = function
  | `Pop -> Format.pp_print_string ppf "pop"
  | `Schedule t -> Format.fprintf ppf "schedule %s" (Q.to_string t)

let pp_sim_script ppf script =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_sim_op)
    script

let sim_script_disagrees script =
  let queue = Sim.create () in
  let pending = ref [] (* (time, tag) in insertion order — the oracle *) in
  let tag = ref 0 in
  let step = function
    | `Schedule time ->
        incr tag;
        Sim.schedule queue ~time !tag;
        pending := !pending @ [ (time, !tag) ];
        None
    | `Pop -> (
        let best =
          List.fold_left
            (fun acc (t, g) ->
              match acc with
              | None -> Some (t, g)
              | Some (bt, _) -> if Q.lt t bt then Some (t, g) else acc)
            None !pending
        in
        match (Sim.pop queue, best) with
        | None, None -> None
        | Some (t, v), Some (bt, bg) when v = bg && Q.compare t bt = 0 ->
            pending := List.filter (fun (_, g) -> g <> bg) !pending;
            None
        | Some (t, v), _ ->
            Some
              (Printf.sprintf "popped (%s, #%d), oracle wanted %s"
                 (Q.to_string t) v
                 (match best with
                 | None -> "empty"
                 | Some (bt, bg) ->
                     Printf.sprintf "(%s, #%d)" (Q.to_string bt) bg))
        | None, Some (bt, bg) ->
            Some
              (Printf.sprintf "queue empty, oracle still has (%s, #%d)"
                 (Q.to_string bt) bg))
  in
  List.find_map step script

let test_sim_interleaving_vs_oracle () =
  Gen.each_seed ~salt:7071 ~count:150 (fun ~seed rng ->
      let n = 10 + Random.State.int rng 60 in
      let script =
        List.init n (fun _ ->
            if Random.State.int rng 3 = 0 then `Pop
            else `Schedule (gen_time rng))
        (* drain tail: pops over an emptying (and shrinking) heap *)
        @ List.init (n / 2) (fun _ -> `Pop)
      in
      match sim_script_disagrees script with
      | None -> ()
      | Some msg ->
          Gen.report_minimized ~seed ~what:"sim script" pp_sim_script
            (Gen.shrink_list
               ~fails:(fun s -> sim_script_disagrees s <> None)
               script);
          Alcotest.failf "seed %d: sim diverges from oracle: %s" seed msg)

(* --- channels --- *)

let test_channel_fifo () =
  let channels = Naplet.Channel.create () in
  ignore (Naplet.Channel.send channels ~chan:"c" (Sral.Value.Int 1));
  ignore (Naplet.Channel.send channels ~chan:"c" (Sral.Value.Int 2));
  Alcotest.(check int) "depth" 2 (Naplet.Channel.depth channels ~chan:"c");
  (match Naplet.Channel.try_recv channels ~chan:"c" with
  | Some (Sral.Value.Int 1) -> ()
  | _ -> Alcotest.fail "fifo order");
  Alcotest.(check int) "depth after" 1
    (Naplet.Channel.depth channels ~chan:"c")

let test_channel_waiters () =
  let channels = Naplet.Channel.create () in
  Naplet.Channel.park channels ~chan:"c" { Naplet.Channel.agent = "a1"; thread = 0 };
  Naplet.Channel.park channels ~chan:"c" { Naplet.Channel.agent = "a2"; thread = 1 };
  Alcotest.(check int) "waiting" 2 (Naplet.Channel.waiting channels ~chan:"c");
  let woken = Naplet.Channel.send channels ~chan:"c" (Sral.Value.Int 7) in
  Alcotest.(check int) "all woken" 2 (List.length woken);
  Alcotest.(check string) "fifo wake" "a1"
    (List.hd woken).Naplet.Channel.agent;
  Alcotest.(check int) "cleared" 0 (Naplet.Channel.waiting channels ~chan:"c")

(* --- signals --- *)

let test_signals_sticky () =
  let signals = Naplet.Signal_table.create () in
  Alcotest.(check bool) "not raised" false
    (Naplet.Signal_table.is_raised signals "e");
  ignore (Naplet.Signal_table.raise_signal signals "e");
  Alcotest.(check bool) "raised" true
    (Naplet.Signal_table.is_raised signals "e");
  (* idempotent *)
  ignore (Naplet.Signal_table.raise_signal signals "e");
  Alcotest.(check (list string)) "once" [ "e" ]
    (Naplet.Signal_table.raised signals)

let test_signal_waiters () =
  let signals = Naplet.Signal_table.create () in
  Naplet.Signal_table.park signals "e"
    { Naplet.Signal_table.agent = "a1"; thread = 0 };
  let woken = Naplet.Signal_table.raise_signal signals "e" in
  Alcotest.(check int) "woken" 1 (List.length woken)

(* --- machine --- *)

let run_accesses program =
  (* drive a machine to completion, auto-granting accesses; returns the
     access trace *)
  let machine = Naplet.Machine.create program in
  let rec loop acc guard =
    if guard = 0 then Alcotest.fail "machine did not terminate"
    else
      match Naplet.Machine.step machine with
      | Naplet.Machine.Finished -> List.rev acc
      | Naplet.Machine.Fault msg -> Alcotest.fail ("fault: " ^ msg)
      | Naplet.Machine.All_blocked -> Alcotest.fail "deadlock"
      | Naplet.Machine.Ready { thread; request; _ } -> (
          match request with
          | Naplet.Machine.Access a ->
              Naplet.Machine.complete machine ~thread;
              loop (a :: acc) (guard - 1)
          | Naplet.Machine.Send _ | Naplet.Machine.Signal _ ->
              Naplet.Machine.complete machine ~thread;
              loop acc (guard - 1)
          | Naplet.Machine.Recv (_, var) ->
              Naplet.Machine.complete_recv machine ~thread ~var
                (Sral.Value.Int 0);
              loop acc (guard - 1)
          | Naplet.Machine.Wait _ ->
              Naplet.Machine.complete machine ~thread;
              loop acc (guard - 1))
  in
  loop [] 10_000

let test_machine_sequence () =
  let trace = run_accesses (prog "read a @ s1; write b @ s2; read c @ s1") in
  Alcotest.(check int) "three accesses" 3 (List.length trace);
  Alcotest.(check string) "order" "a"
    (List.hd trace).Sral.Access.resource

let test_machine_branching () =
  let trace =
    run_accesses
      (prog "x := 5; if x > 3 then { read yes @ s1 } else { read no @ s1 }")
  in
  Alcotest.(check (list string)) "then branch" [ "yes" ]
    (List.map (fun (a : Sral.Access.t) -> a.Sral.Access.resource) trace)

let test_machine_loop () =
  let trace =
    run_accesses
      (prog "i := 0; while i < 4 do { read r @ s1; i := i + 1 }")
  in
  Alcotest.(check int) "four iterations" 4 (List.length trace)

let test_machine_par_join () =
  let trace =
    run_accesses
      (prog "{ read a @ s1 || read b @ s1 }; read after @ s1")
  in
  Alcotest.(check int) "all three" 3 (List.length trace);
  (* the join runs strictly after both branches *)
  let last = List.nth trace 2 in
  Alcotest.(check string) "join last" "after" last.Sral.Access.resource

let test_machine_nested_par () =
  let trace =
    run_accesses (prog "{ read a @ s1 || { read b @ s1 || read c @ s1 } }")
  in
  Alcotest.(check int) "three accesses" 3 (List.length trace)

let test_machine_fault_on_unbound () =
  let machine = Naplet.Machine.create (prog "if zz > 0 then { skip } else { skip }") in
  match Naplet.Machine.step machine with
  | Naplet.Machine.Fault msg ->
      Alcotest.(check bool) "mentions variable" true
        (String.length msg > 0)
  | _ -> Alcotest.fail "expected fault"

let test_machine_divergence_fuel () =
  let machine = Naplet.Machine.create ~fuel:100 (prog "while true do { skip }") in
  match Naplet.Machine.step machine with
  | Naplet.Machine.Fault _ -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_machine_env () =
  let machine = Naplet.Machine.create (prog "x := 2 + 3") in
  (match Naplet.Machine.step machine with
  | Naplet.Machine.Finished -> ()
  | _ -> Alcotest.fail "should finish");
  match Naplet.Machine.env_value machine "x" with
  | Some (Sral.Value.Int 5) -> ()
  | _ -> Alcotest.fail "x should be 5"

(* --- itineraries --- *)

let test_itinerary_servers_linearize () =
  let it =
    Naplet.Itinerary.Seq
      [
        Naplet.Itinerary.Visit "s1";
        Naplet.Itinerary.Alt
          [ Naplet.Itinerary.Visit "s2"; Naplet.Itinerary.Visit "s3" ];
        Naplet.Itinerary.Par
          [ Naplet.Itinerary.Visit "s4"; Naplet.Itinerary.Visit "s5" ];
      ]
  in
  Alcotest.(check (list string)) "servers" [ "s1"; "s2"; "s3"; "s4"; "s5" ]
    (Naplet.Itinerary.servers it);
  Alcotest.(check (list string)) "default route" [ "s1"; "s2"; "s4"; "s5" ]
    (Naplet.Itinerary.linearize it);
  Alcotest.(check (list string)) "alt route" [ "s1"; "s3"; "s4"; "s5" ]
    (Naplet.Itinerary.linearize ~choose:(fun n -> n - 1) it)

let test_itinerary_to_program () =
  let it =
    Naplet.Itinerary.Seq
      [
        Naplet.Itinerary.Visit "s1";
        Naplet.Itinerary.Par
          [ Naplet.Itinerary.Visit "s2"; Naplet.Itinerary.Visit "s3" ];
      ]
  in
  let task s = Sral.Ast.Access (Sral.Access.read "x" ~at:s) in
  let p = Naplet.Itinerary.to_program ~task it in
  Alcotest.(check bool) "has par" true (Sral.Program.has_par p);
  Alcotest.(check int) "three accesses" 3 (Sral.Program.access_count p)

let test_itinerary_shard () =
  let it =
    Naplet.Itinerary.Seq
      (List.init 6 (fun i -> Naplet.Itinerary.Visit (Printf.sprintf "s%d" i)))
  in
  let shards = Naplet.Itinerary.shard it ~clones:3 in
  Alcotest.(check int) "three shards" 3 (List.length shards);
  let all = List.concat_map Naplet.Itinerary.linearize shards in
  Alcotest.(check int) "covers all servers" 6 (List.length all)

(* --- world --- *)

let permissive_control () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "owner";
  Rbac.Policy.add_role policy "worker";
  Rbac.Policy.assign_user policy "owner" "worker";
  Rbac.Policy.grant policy "worker" (Rbac.Perm.make ~operation:"*" ~target:"*@*");
  Coordinated.System.create policy

let world_with_servers servers =
  let world = Naplet.World.create (permissive_control ()) in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    servers;
  world

let test_world_single_agent () =
  let world = world_with_servers [ "s1"; "s2" ] in
  Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read x @ s1; read y @ s2; read z @ s1");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "granted" 3 metrics.Naplet.Metrics.granted;
  Alcotest.(check int) "migrations" 2 metrics.Naplet.Metrics.migrations;
  Alcotest.(check int) "completed" 1 metrics.Naplet.Metrics.completed_agents;
  match Naplet.World.agent world "a" with
  | Some agent ->
      Alcotest.(check bool) "done" true
        (match agent.Naplet.Agent.status with
        | Naplet.Agent.Completed _ -> true
        | _ -> false)
  | None -> Alcotest.fail "agent lost"

(* Enumeration-order regression: [servers] and [agents] walk the state
   tables in registration/spawn order (NOT name order — names here are
   deliberately unsorted), and adding more entries never reorders the
   existing prefix. *)
let test_world_enumeration_order_stable () =
  let world = Naplet.World.create (permissive_control ()) in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    [ "s2"; "s9"; "s1" ];
  let server_names () =
    List.map Naplet.Server.name (Naplet.World.servers world)
  in
  Alcotest.(check (list string))
    "registration order" [ "s2"; "s9"; "s1" ] (server_names ());
  Naplet.World.add_server world (Naplet.Server.create "s0");
  Alcotest.(check (list string))
    "prefix stable across add" [ "s2"; "s9"; "s1"; "s0" ] (server_names ());
  let spawn id =
    Naplet.World.spawn world ~id ~owner:"owner" ~roles:[ "worker" ] ~home:"s2"
      (prog "skip")
  in
  List.iter spawn [ "zeta"; "mu"; "alpha" ];
  let agent_ids () =
    List.map (fun a -> a.Naplet.Agent.id) (Naplet.World.agents world)
  in
  Alcotest.(check (list string))
    "spawn order" [ "zeta"; "mu"; "alpha" ] (agent_ids ());
  spawn "beta";
  Alcotest.(check (list string))
    "prefix stable across spawn"
    [ "zeta"; "mu"; "alpha"; "beta" ]
    (agent_ids ());
  (* the views stay enumerable in the same order after a run, too *)
  ignore (Naplet.World.run world);
  Alcotest.(check (list string))
    "order survives the run"
    [ "zeta"; "mu"; "alpha"; "beta" ]
    (agent_ids ())

(* The tentpole's safety net, in the tier-1 suite: randomized
   coalitions (teams, channels, fault plans, mid-run admin actions)
   driven through the SoA world and the retained legacy world must
   export byte-identical traces.  The full-width gate lives in the E19
   bench; this keeps a slice of it on every dune runtest.  Widened
   from 12 to 24 seeds as a soak checkpoint — cumulative divergence
   count across the widenings is tracked in EXPERIMENTS.md. *)
let test_world_matches_legacy_oracle () =
  Alcotest.(check (list int))
    "no divergent seeds" []
    (Scenarios.Scale_family.divergences ~runs:24 (1000 + Gen.offset))

let test_world_producer_consumer () =
  let world = world_with_servers [ "s1" ] in
  Naplet.World.spawn world ~id:"producer" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read src @ s1; c ! 42");
  Naplet.World.spawn world ~id:"consumer" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "c ? v; read sink @ s1");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "both completed" 2 metrics.Naplet.Metrics.completed_agents;
  Alcotest.(check int) "message passed" 1 metrics.Naplet.Metrics.messages;
  (* consumer got the value *)
  match Naplet.World.agent world "consumer" with
  | Some agent -> (
      match Naplet.Machine.env_value agent.Naplet.Agent.machine "v" with
      | Some (Sral.Value.Int 42) -> ()
      | _ -> Alcotest.fail "value not delivered")
  | None -> Alcotest.fail "consumer lost"

let test_world_signal_ordering () =
  let world = world_with_servers [ "s1" ] in
  (* the waiter's access must happen after the signaler's *)
  Naplet.World.spawn world ~id:"waiter" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "wait(go); read late @ s1");
  Naplet.World.spawn world ~id:"signaler" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read early @ s1; signal(go)");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "both done" 2 metrics.Naplet.Metrics.completed_agents;
  let log = Coordinated.System.log (Naplet.Security_manager.control (Naplet.World.manager world)) in
  let order =
    List.map
      (fun (e : Coordinated.Audit_log.entry) ->
        e.Coordinated.Audit_log.access.Sral.Access.resource)
      (Coordinated.Audit_log.entries log)
  in
  Alcotest.(check (list string)) "early before late" [ "early"; "late" ] order

let test_world_deadlock_detected () =
  let world = world_with_servers [ "s1" ] in
  Naplet.World.spawn world ~id:"stuck" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "never ? x");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "deadlocked" 1 metrics.Naplet.Metrics.deadlocked_agents;
  Alcotest.(check int) "not completed" 0 metrics.Naplet.Metrics.completed_agents

let test_world_denial_policies () =
  (* a policy that denies everything *)
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "owner";
  Rbac.Policy.add_role policy "mute";
  Rbac.Policy.assign_user policy "owner" "mute";
  let control = Coordinated.System.create policy in
  let world = Naplet.World.create control in
  Naplet.World.add_server world (Naplet.Server.create "s1");
  Naplet.World.spawn world ~id:"skipper" ~owner:"owner" ~roles:[ "mute" ]
    ~home:"s1" (prog "read x @ s1; read y @ s1");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "denied twice" 2 metrics.Naplet.Metrics.denied;
  Alcotest.(check int) "skip policy completes" 1
    metrics.Naplet.Metrics.completed_agents;
  (* abort policy *)
  let config =
    { Naplet.World.default_config with Naplet.World.deny_policy = Naplet.World.Abort_agent }
  in
  let world2 = Naplet.World.create ~config (Coordinated.System.create policy) in
  Naplet.World.add_server world2 (Naplet.Server.create "s1");
  Naplet.World.spawn world2 ~id:"victim" ~owner:"owner" ~roles:[ "mute" ]
    ~home:"s1" (prog "read x @ s1; read y @ s1");
  let metrics2 = Naplet.World.run world2 in
  Alcotest.(check int) "aborted" 1 metrics2.Naplet.Metrics.aborted_agents;
  Alcotest.(check int) "only first denial" 1 metrics2.Naplet.Metrics.denied

let test_world_determinism () =
  let run_once () =
    let world = world_with_servers [ "s1"; "s2" ] in
    List.iter
      (fun i ->
        Naplet.World.spawn world
          ~id:(Printf.sprintf "a%d" i)
          ~owner:"owner" ~roles:[ "worker" ] ~home:"s1"
          (prog "read x @ s1; read y @ s2; c ! 1; c ? z; read w @ s1"))
      [ 1; 2; 3 ];
    let metrics = Naplet.World.run world in
    ( metrics.Naplet.Metrics.granted,
      Q.to_string metrics.Naplet.Metrics.end_time )
  in
  let r1 = run_once () and r2 = run_once () in
  Alcotest.(check (pair int string)) "bit-identical runs" r1 r2

let test_world_spawn_validation () =
  let world = world_with_servers [ "s1" ] in
  Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[] ~home:"s1"
    (prog "skip");
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "World.spawn: duplicate agent id a") (fun () ->
      Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[] ~home:"s1"
        (prog "skip"));
  Alcotest.check_raises "unknown home"
    (Invalid_argument "World.spawn: unknown home server mars") (fun () ->
      Naplet.World.spawn world ~id:"b" ~owner:"owner" ~roles:[] ~home:"mars"
        (prog "skip"))

let test_world_migration_time () =
  let world = world_with_servers [ "s1"; "s2" ] in
  Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read x @ s2");
  let metrics = Naplet.World.run world in
  (* one migration (5) + one access (1) plus negligible step costs *)
  Alcotest.(check bool) "time >= 6" true
    (Q.ge metrics.Naplet.Metrics.end_time (q 6));
  Alcotest.(check bool) "time < 7" true
    (Q.lt metrics.Naplet.Metrics.end_time (q 7))

(* --- early teardown and abort cleanup --- *)

let test_sim_drain_clear () =
  let queue = Sim.create () in
  List.iter (fun i -> Sim.schedule queue ~time:(q i) i) [ 4; 1; 3; 2 ];
  Alcotest.(check int) "size" 4 (Sim.size queue);
  let drained = Sim.drain queue in
  Alcotest.(check (list int)) "drain pops in time order" [ 1; 2; 3; 4 ]
    (List.map snd drained);
  Alcotest.(check int) "size after drain" 0 (Sim.size queue);
  List.iter (fun i -> Sim.schedule queue ~time:(q i) i) [ 9; 8 ];
  Sim.clear queue;
  Alcotest.(check int) "size after clear" 0 (Sim.size queue);
  Alcotest.(check bool) "empty after clear" true (Sim.is_empty queue);
  (* still usable afterwards *)
  Sim.schedule queue ~time:(q 5) 5;
  Alcotest.(check (option string)) "usable after clear" (Some "5")
    (Option.map Q.to_string (Sim.peek_time queue))

let test_channel_cancel () =
  let channels = Naplet.Channel.create () in
  let w1 = { Naplet.Channel.agent = "a1"; thread = 0 } in
  let w2 = { Naplet.Channel.agent = "a2"; thread = 0 } in
  Naplet.Channel.park channels ~chan:"c" w1;
  Naplet.Channel.park channels ~chan:"c" w2;
  Naplet.Channel.park channels ~chan:"d" { Naplet.Channel.agent = "a1"; thread = 1 };
  Alcotest.(check bool) "cancel parked" true
    (Naplet.Channel.cancel channels ~chan:"c" w1);
  Alcotest.(check bool) "second cancel is a no-op" false
    (Naplet.Channel.cancel channels ~chan:"c" w1);
  Alcotest.(check int) "other waiter kept" 1
    (Naplet.Channel.waiting channels ~chan:"c");
  Alcotest.(check int) "cancel_agent sweeps all channels" 1
    (Naplet.Channel.cancel_agent channels ~agent:"a1");
  Alcotest.(check int) "d emptied" 0 (Naplet.Channel.waiting channels ~chan:"d")

let test_signal_cancel_agent () =
  let signals = Naplet.Signal_table.create () in
  Naplet.Signal_table.park signals "x" { Naplet.Signal_table.agent = "a1"; thread = 0 };
  Naplet.Signal_table.park signals "y" { Naplet.Signal_table.agent = "a1"; thread = 1 };
  Naplet.Signal_table.park signals "x" { Naplet.Signal_table.agent = "a2"; thread = 0 };
  Alcotest.(check int) "two waiters removed" 2
    (Naplet.Signal_table.cancel_agent signals ~agent:"a1");
  Alcotest.(check int) "a2 still waiting" 1
    (Naplet.Signal_table.waiting signals "x");
  Alcotest.(check int) "y emptied" 0 (Naplet.Signal_table.waiting signals "y")

(* Abort_agent mid-itinerary: the dead agent's parked channel and
   signal waiters are released, and later sends/signals from live
   agents do not try to wake it. *)
let test_world_abort_releases_waiters () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "owner";
  Rbac.Policy.add_role policy "mute";
  Rbac.Policy.assign_user policy "owner" "mute";
  let config =
    {
      Naplet.World.default_config with
      Naplet.World.deny_policy = Naplet.World.Abort_agent;
    }
  in
  let world = Naplet.World.create ~config (Coordinated.System.create policy) in
  Naplet.World.add_server world (Naplet.Server.create "s1");
  (* two threads park on a channel and a signal; the third is denied,
     killing the whole agent *)
  Naplet.World.spawn world ~id:"victim" ~owner:"owner" ~roles:[ "mute" ]
    ~home:"s1"
    (prog "{ c ? x } || { wait(go) } || { read secret @ s1 }");
  (* a second agent whose send/signal must not resurrect the victim *)
  Naplet.World.at world ~time:(q 10) (fun () ->
      Naplet.World.spawn world ~id:"bystander" ~owner:"owner" ~roles:[ "mute" ]
        ~home:"s1" (prog "c ! 1; signal(go)"));
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "victim aborted" 1 metrics.Naplet.Metrics.aborted_agents;
  Alcotest.(check int) "bystander completed" 1
    metrics.Naplet.Metrics.completed_agents;
  Alcotest.(check int) "nobody deadlocked" 0
    metrics.Naplet.Metrics.deadlocked_agents;
  Alcotest.(check int) "one denial" 1 metrics.Naplet.Metrics.denied;
  Alcotest.(check int) "no waiter left on c" 0
    (Naplet.Channel.waiting (Naplet.World.channels world) ~chan:"c");
  match Naplet.World.agent world "victim" with
  | Some agent ->
      Alcotest.(check bool) "status is Aborted" true
        (match agent.Naplet.Agent.status with
        | Naplet.Agent.Aborted _ -> true
        | _ -> false)
  | None -> Alcotest.fail "victim lost"

let test_world_halt_tears_down () =
  let world = world_with_servers [ "s1"; "s2" ] in
  Naplet.World.spawn world ~id:"wanderer" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read a @ s2; read b @ s1; read c @ s2");
  (* kill the world after the first migration is under way *)
  Naplet.World.at world ~time:(q 6) (fun () -> Naplet.World.halt world);
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "queue empty after halt" 0
    (Naplet.World.pending_events world);
  Alcotest.(check bool) "run wound down early" true
    (Q.le metrics.Naplet.Metrics.end_time (q 6));
  Alcotest.(check bool) "work was cut short" true
    (metrics.Naplet.Metrics.granted < 3)

let test_itinerary_linearize_avoiding () =
  let open Naplet.Itinerary in
  let it =
    Seq [ Visit "s1"; Alt [ Visit "s2"; Visit "s3" ]; Par [ Visit "s4" ] ]
  in
  let route ~down = linearize_avoiding ~down it in
  Alcotest.(check (list string)) "no faults: first alternative"
    [ "s1"; "s2"; "s4" ]
    (route ~down:(fun _ -> false));
  Alcotest.(check (list string)) "down alternative is routed around"
    [ "s1"; "s3"; "s4" ]
    (route ~down:(fun s -> s = "s2"));
  Alcotest.(check (list string)) "down mandatory stop is dropped"
    [ "s2"; "s4" ]
    (route ~down:(fun s -> s = "s1"));
  Alcotest.(check (list string)) "all alternatives down: keep the first"
    [ "s1"; "s2"; "s4" ]
    (route ~down:(fun s -> s = "s2" || s = "s3"))

(* --- event log --- *)

let test_event_log_sequence () =
  let world = world_with_servers [ "s1"; "s2" ] in
  Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read x @ s1; read y @ s2; c ! 1; signal(fin)");
  ignore (Naplet.World.run world);
  let log = Naplet.World.events world in
  let kinds =
    List.map
      (fun (e : Naplet.Event_log.event) ->
        match e.Naplet.Event_log.kind with
        | Naplet.Event_log.Spawned _ -> "spawn"
        | Naplet.Event_log.Migrated _ -> "migrate"
        | Naplet.Event_log.Access_granted _ -> "grant"
        | Naplet.Event_log.Access_denied _ -> "deny"
        | Naplet.Event_log.Message_sent _ -> "send"
        | Naplet.Event_log.Message_received _ -> "recv"
        | Naplet.Event_log.Signal_raised _ -> "signal"
        | Naplet.Event_log.Completed -> "done"
        | Naplet.Event_log.Aborted _ -> "abort"
        | Naplet.Event_log.Deadlocked -> "deadlock"
        | Naplet.Event_log.Fault _ -> "fault"
        | Naplet.Event_log.Retry _ -> "retry"
        | Naplet.Event_log.Gave_up _ -> "gave-up")
      (Naplet.Event_log.events log)
  in
  Alcotest.(check (list string)) "lifecycle order"
    [ "spawn"; "grant"; "migrate"; "grant"; "send"; "signal"; "done" ]
    kinds

let test_event_log_denials_recorded () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "owner";
  Rbac.Policy.add_role policy "mute";
  Rbac.Policy.assign_user policy "owner" "mute";
  let world = Naplet.World.create (Coordinated.System.create policy) in
  Naplet.World.add_server world (Naplet.Server.create "s1");
  Naplet.World.spawn world ~id:"a" ~owner:"owner" ~roles:[ "mute" ] ~home:"s1"
    (prog "read x @ s1");
  ignore (Naplet.World.run world);
  let log = Naplet.World.events world in
  Alcotest.(check int) "one denial event" 1
    (Naplet.Event_log.count log (function
      | Naplet.Event_log.Access_denied _ -> true
      | _ -> false));
  (* the denial carries a reason *)
  match
    List.find_map
      (fun (e : Naplet.Event_log.event) ->
        match e.Naplet.Event_log.kind with
        | Naplet.Event_log.Access_denied (_, why) -> Some why
        | _ -> None)
      (Naplet.Event_log.events log)
  with
  | Some why -> Alcotest.(check bool) "reason text" true (String.length why > 0)
  | None -> Alcotest.fail "denial event missing"

let test_event_log_for_agent () =
  let world = world_with_servers [ "s1" ] in
  Naplet.World.spawn world ~id:"a1" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read x @ s1");
  Naplet.World.spawn world ~id:"a2" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "read y @ s1");
  ignore (Naplet.World.run world);
  let log = Naplet.World.events world in
  Alcotest.(check int) "a1 events" 3
    (List.length (Naplet.Event_log.for_agent log "a1"));
  Alcotest.(check int) "total" 6 (Naplet.Event_log.size log)

(* --- server contention --- *)

let test_server_reserve_serializes () =
  let srv = Naplet.Server.create "s" in
  let s1, f1 = Naplet.Server.reserve srv ~now:Q.zero in
  let s2, f2 = Naplet.Server.reserve srv ~now:Q.zero in
  Alcotest.(check string) "first starts now" "0" (Q.to_string s1);
  Alcotest.(check string) "first ends at 1" "1" (Q.to_string f1);
  Alcotest.(check string) "second queues" "1" (Q.to_string s2);
  Alcotest.(check string) "second ends at 2" "2" (Q.to_string f2)

let test_server_capacity_parallelism () =
  let srv = Naplet.Server.create ~capacity:2 "s" in
  let s1, _ = Naplet.Server.reserve srv ~now:Q.zero in
  let s2, _ = Naplet.Server.reserve srv ~now:Q.zero in
  let s3, _ = Naplet.Server.reserve srv ~now:Q.zero in
  Alcotest.(check string) "slot 1 now" "0" (Q.to_string s1);
  Alcotest.(check string) "slot 2 now" "0" (Q.to_string s2);
  Alcotest.(check string) "third queues" "1" (Q.to_string s3);
  (* after the backlog clears, requests start immediately again *)
  let s4, _ = Naplet.Server.reserve srv ~now:(q 10) in
  Alcotest.(check string) "idle later" "10" (Q.to_string s4)

let test_world_contention_serializes_agents () =
  (* 4 agents, one single-slot server: the sim time reflects queueing *)
  let world = world_with_servers [ "s1" ] in
  for i = 1 to 4 do
    Naplet.World.spawn world
      ~id:(Printf.sprintf "a%d" i)
      ~owner:"owner" ~roles:[ "worker" ] ~home:"s1" (prog "read x @ s1")
  done;
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "all granted" 4 metrics.Naplet.Metrics.granted;
  (* 4 sequential services of 1 unit each *)
  Alcotest.(check bool) "time >= 4" true
    (Q.ge metrics.Naplet.Metrics.end_time (q 4))

let test_world_capacity_speeds_up () =
  let run capacity =
    let world = world_with_servers [] in
    Naplet.World.add_server world (Naplet.Server.create ~capacity "s1");
    for i = 1 to 4 do
      Naplet.World.spawn world
        ~id:(Printf.sprintf "a%d" i)
        ~owner:"owner" ~roles:[ "worker" ] ~home:"s1" (prog "read x @ s1")
    done;
    (Naplet.World.run world).Naplet.Metrics.end_time
  in
  Alcotest.(check bool) "capacity 4 faster than capacity 1" true
    (Q.lt (run 4) (run 1))

(* --- administrative events --- *)

let test_admin_event_revokes_role () =
  let world = world_with_servers [ "s1" ] in
  (* agent does 5 spaced reads; at t=2.5 the officer deactivates its
     role, so later reads are denied *)
  Naplet.World.spawn world ~id:"steady" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1"
    (prog "read a @ s1; read b @ s1; read c @ s1; read d @ s1; read e @ s1");
  Naplet.World.at world ~time:(Q.make 5 2) (fun () ->
      match
        Naplet.Security_manager.session
          (Naplet.World.manager world)
          ~object_id:"steady"
      with
      | Some session -> Rbac.Session.deactivate session "worker"
      | None -> ());
  let metrics = Naplet.World.run world in
  (* accesses land at t=0,1,2,3,4 (1 unit service each): three granted
     before the revocation, two denied after *)
  Alcotest.(check int) "granted before revocation" 3
    metrics.Naplet.Metrics.granted;
  Alcotest.(check int) "denied after" 2 metrics.Naplet.Metrics.denied

(* --- state appraisal --- *)

let test_appraisal_basics () =
  let a = Naplet.Appraisal.create () in
  Naplet.Appraisal.var_bounds ~name:"hops" ~var:"hops" ~min:0 ~max:5 a;
  Naplet.Appraisal.var_is_bool ~name:"flag" ~var:"armed" a;
  Alcotest.(check int) "two invariants" 2 (Naplet.Appraisal.invariant_count a);
  let lookup_ok = function
    | "hops" -> Some (Sral.Value.Int 3)
    | "armed" -> Some (Sral.Value.Bool false)
    | _ -> None
  in
  Alcotest.(check bool) "sound" true
    (Naplet.Appraisal.appraise a lookup_ok = Naplet.Appraisal.Sound);
  let lookup_bad = function
    | "hops" -> Some (Sral.Value.Int 99)
    | _ -> None
  in
  (match Naplet.Appraisal.appraise a lookup_bad with
  | Naplet.Appraisal.Corrupted "hops" -> ()
  | _ -> Alcotest.fail "expected hops violation");
  (* unbound variables pass *)
  Alcotest.(check bool) "unbound passes" true
    (Naplet.Appraisal.appraise a (fun _ -> None) = Naplet.Appraisal.Sound)

let test_appraisal_raising_invariant_fails () =
  let a = Naplet.Appraisal.create () in
  Naplet.Appraisal.add_invariant a ~name:"boom" (fun _ -> failwith "oops");
  match Naplet.Appraisal.appraise a (fun _ -> None) with
  | Naplet.Appraisal.Corrupted "boom" -> ()
  | _ -> Alcotest.fail "raising invariant must count as failed"

let test_appraisal_quarantines_corrupted_agent () =
  let world = world_with_servers [ "s1"; "s2" ] in
  let appraisal = Naplet.Appraisal.create () in
  Naplet.Appraisal.var_bounds ~name:"payload-size" ~var:"payload" ~min:0
    ~max:100 appraisal;
  Naplet.World.set_appraisal world appraisal;
  (* the agent corrupts its own state before migrating *)
  Naplet.World.spawn world ~id:"mule" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1"
    (prog "read ok @ s1; payload := 100000; read target @ s2");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "first access fine" 1 metrics.Naplet.Metrics.granted;
  Alcotest.(check int) "aborted at arrival" 1
    metrics.Naplet.Metrics.aborted_agents;
  match Naplet.World.agent world "mule" with
  | Some { Naplet.Agent.status = Naplet.Agent.Aborted why; _ } ->
      Alcotest.(check bool) "reason names the invariant" true
        (String.length why > 0)
  | _ -> Alcotest.fail "agent should be aborted"

let test_appraisal_sound_agent_unaffected () =
  let world = world_with_servers [ "s1"; "s2" ] in
  let appraisal = Naplet.Appraisal.create () in
  Naplet.Appraisal.var_bounds ~name:"payload-size" ~var:"payload" ~min:0
    ~max:100 appraisal;
  Naplet.World.set_appraisal world appraisal;
  Naplet.World.spawn world ~id:"honest" ~owner:"owner" ~roles:[ "worker" ]
    ~home:"s1" (prog "payload := 7; read a @ s1; read b @ s2");
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "completed" 1 metrics.Naplet.Metrics.completed_agents;
  Alcotest.(check int) "both granted" 2 metrics.Naplet.Metrics.granted

(* --- machine vs big-step evaluator (differential) --- *)

let machine_matches_bigstep =
  QCheck.Test.make
    ~name:"machine trace = big-step trace (sequential programs)" ~count:100
    (QCheck.make (fun rng ->
         Sral.Generate.program ~allow_par:false ~allow_io:false
           ~resources:[ "a"; "b" ] ~servers:[ "s1"; "s2" ] ~size:8 rng))
    (fun p ->
      match Sral.Eval.run p with
      | Error _ -> QCheck.assume_fail ()
      | Ok { Sral.Eval.trace = expected; _ } ->
          let actual = run_accesses p in
          Sral.Trace.equal expected actual)

(* --- clones (ApplAgentProg) --- *)

let test_clone_plan_shares () =
  let accesses =
    List.init 7 (fun i -> Sral.Access.read (Printf.sprintf "m%d" i) ~at:"s1")
  in
  let clones = Naplet.Clone.plan ~team:"audit" ~clones:3 accesses in
  Alcotest.(check int) "three clones" 3 (List.length clones);
  (* shares cover everything, in order, without overlap *)
  let all = List.concat_map (fun c -> c.Naplet.Clone.share) clones in
  Alcotest.(check int) "coverage" 7 (List.length all);
  Alcotest.(check bool) "order preserved" true
    (List.for_all2 Sral.Access.equal accesses all);
  List.iter
    (fun c ->
      Alcotest.(check string) "team" "audit" c.Naplet.Clone.team)
    clones

let test_clone_more_clones_than_work () =
  let accesses = [ Sral.Access.read "only" ~at:"s1" ] in
  let clones = Naplet.Clone.plan ~team:"t" ~clones:5 accesses in
  Alcotest.(check int) "one non-empty clone" 1 (List.length clones)

let test_clone_end_to_end () =
  let world = world_with_servers [ "s1"; "s2" ] in
  let accesses =
    [
      Sral.Access.read "a" ~at:"s1";
      Sral.Access.read "b" ~at:"s2";
      Sral.Access.read "c" ~at:"s1";
      Sral.Access.read "d" ~at:"s2";
    ]
  in
  let clones = Naplet.Clone.plan ~team:"crew" ~clones:2 accesses in
  Naplet.Clone.spawn_all world ~owner:"owner" ~roles:[ "worker" ] ~home:"s1"
    clones;
  Naplet.World.spawn world ~team:"crew" ~id:"crew-home" ~owner:"owner"
    ~roles:[] ~home:"s1"
    (Naplet.Clone.collector_program ~team:"crew" (List.length clones));
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "all accesses granted" 4 metrics.Naplet.Metrics.granted;
  Alcotest.(check int) "all agents complete" 3
    metrics.Naplet.Metrics.completed_agents;
  (* the collector summed both reports *)
  match Naplet.World.agent world "crew-home" with
  | Some agent -> (
      match Naplet.Machine.env_value agent.Naplet.Agent.machine "total" with
      | Some (Sral.Value.Int total) ->
          Alcotest.(check int) "reported completions" 4 total
      | _ -> Alcotest.fail "collector total missing")
  | None -> Alcotest.fail "collector lost"

let test_clone_guard_skips () =
  let world = world_with_servers [ "s1" ] in
  let accesses = List.init 3 (fun i -> Sral.Access.read (Printf.sprintf "g%d" i) ~at:"s1") in
  (* a guard that is false skips every access *)
  let clones =
    Naplet.Clone.plan ~guard:(Sral.Expr.Bool false) ~team:"idle" ~clones:1
      accesses
  in
  Naplet.Clone.spawn_all world ~owner:"owner" ~roles:[ "worker" ] ~home:"s1"
    clones;
  Naplet.World.spawn world ~team:"idle" ~id:"idle-home" ~owner:"owner"
    ~roles:[] ~home:"s1" (Naplet.Clone.collector_program ~team:"idle" 1);
  let metrics = Naplet.World.run world in
  Alcotest.(check int) "nothing accessed" 0 metrics.Naplet.Metrics.granted;
  match Naplet.World.agent world "idle-home" with
  | Some agent -> (
      match Naplet.Machine.env_value agent.Naplet.Agent.machine "total" with
      | Some (Sral.Value.Int 0) -> ()
      | _ -> Alcotest.fail "guarded-out accesses must not count")
  | None -> Alcotest.fail "collector lost"

(* --- security manager: rejected role activations are observable --- *)

let test_on_arrival_reports_rejections () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "owner";
  List.iter (Rbac.Policy.add_role policy) [ "worker"; "pilot"; "navigator" ];
  Rbac.Policy.assign_user policy "owner" "worker";
  Rbac.Policy.assign_user policy "owner" "pilot";
  Rbac.Policy.assign_user policy "owner" "navigator";
  (* pilot and navigator conflict dynamically: at most one active *)
  Rbac.Policy.add_dsd policy
    (Rbac.Sod.make ~name:"cockpit" ~roles:[ "pilot"; "navigator" ] ~max_roles:1);
  let manager =
    Naplet.Security_manager.create (Coordinated.System.create policy)
  in
  let session, rejected =
    Naplet.Security_manager.on_arrival manager ~object_id:"o" ~owner:"owner"
      ~roles:[ "worker"; "ghost"; "pilot"; "navigator" ]
      ~server:"s1" ~time:Q.zero ~program:(prog "skip")
  in
  Alcotest.(check (list string)) "activated what it could"
    [ "pilot"; "worker" ]
    (Rbac.Session.active_roles session);
  Alcotest.(check (list string)) "rejections in request order"
    [ "ghost"; "navigator" ]
    (List.map
       (fun (r : Naplet.Security_manager.rejected_role) -> r.role)
       rejected);
  List.iter
    (fun (r : Naplet.Security_manager.rejected_role) ->
      Alcotest.(check bool)
        (Printf.sprintf "reason for %s is non-empty" r.role)
        true
        (String.length r.reason > 0))
    rejected;
  (* the DSD rejection names the constraint *)
  let dsd_reason =
    (List.find
       (fun (r : Naplet.Security_manager.rejected_role) ->
         String.equal r.role "navigator")
       rejected)
      .reason
  in
  Alcotest.(check bool) "dsd reason mentions the sod" true
    (String.length dsd_reason > String.length "dynamic SoD")

let test_on_arrival_no_rejections () =
  let manager = Naplet.Security_manager.create (permissive_control ()) in
  let _session, rejected =
    Naplet.Security_manager.on_arrival manager ~object_id:"o" ~owner:"owner"
      ~roles:[ "worker" ] ~server:"s1" ~time:Q.zero ~program:(prog "skip")
  in
  Alcotest.(check int) "nothing rejected" 0 (List.length rejected);
  (* re-arrival reuses the session and re-activating is idempotent *)
  let session2, rejected2 =
    Naplet.Security_manager.on_arrival manager ~object_id:"o" ~owner:"owner"
      ~roles:[ "worker" ] ~server:"s2" ~time:(q 1) ~program:(prog "skip")
  in
  Alcotest.(check int) "still nothing rejected" 0 (List.length rejected2);
  Alcotest.(check (list string)) "roles stable" [ "worker" ]
    (Rbac.Session.active_roles session2)

let () =
  Alcotest.run "naplet"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_at_equal_times;
          Alcotest.test_case "many events" `Quick test_sim_interleaved_ops;
          Alcotest.test_case "drain and clear" `Quick test_sim_drain_clear;
          Alcotest.test_case "pop is a stable sort (seeded)" `Quick
            test_sim_pop_is_stable_sort;
          Alcotest.test_case "interleavings match oracle (seeded)" `Quick
            test_sim_interleaving_vs_oracle;
        ] );
      ( "channel",
        [
          Alcotest.test_case "fifo" `Quick test_channel_fifo;
          Alcotest.test_case "waiters" `Quick test_channel_waiters;
          Alcotest.test_case "cancel" `Quick test_channel_cancel;
        ] );
      ( "signal",
        [
          Alcotest.test_case "sticky" `Quick test_signals_sticky;
          Alcotest.test_case "waiters" `Quick test_signal_waiters;
          Alcotest.test_case "cancel agent" `Quick test_signal_cancel_agent;
        ] );
      ( "machine",
        [
          Alcotest.test_case "sequence" `Quick test_machine_sequence;
          Alcotest.test_case "branching" `Quick test_machine_branching;
          Alcotest.test_case "loop" `Quick test_machine_loop;
          Alcotest.test_case "par join" `Quick test_machine_par_join;
          Alcotest.test_case "nested par" `Quick test_machine_nested_par;
          Alcotest.test_case "fault" `Quick test_machine_fault_on_unbound;
          Alcotest.test_case "divergence fuel" `Quick
            test_machine_divergence_fuel;
          Alcotest.test_case "env" `Quick test_machine_env;
        ] );
      ( "itinerary",
        [
          Alcotest.test_case "servers/linearize" `Quick
            test_itinerary_servers_linearize;
          Alcotest.test_case "to_program" `Quick test_itinerary_to_program;
          Alcotest.test_case "shard" `Quick test_itinerary_shard;
          Alcotest.test_case "linearize avoiding" `Quick
            test_itinerary_linearize_avoiding;
        ] );
      ( "event-log",
        [
          Alcotest.test_case "lifecycle sequence" `Quick
            test_event_log_sequence;
          Alcotest.test_case "denials recorded" `Quick
            test_event_log_denials_recorded;
          Alcotest.test_case "per agent" `Quick test_event_log_for_agent;
        ] );
      ( "contention",
        [
          Alcotest.test_case "reserve serializes" `Quick
            test_server_reserve_serializes;
          Alcotest.test_case "capacity parallelism" `Quick
            test_server_capacity_parallelism;
          Alcotest.test_case "world serializes" `Quick
            test_world_contention_serializes_agents;
          Alcotest.test_case "capacity speeds up" `Quick
            test_world_capacity_speeds_up;
        ] );
      ( "admin",
        [
          Alcotest.test_case "role revocation mid-run" `Quick
            test_admin_event_revokes_role;
        ] );
      ( "security-manager",
        [
          Alcotest.test_case "rejected roles reported" `Quick
            test_on_arrival_reports_rejections;
          Alcotest.test_case "clean arrival rejects nothing" `Quick
            test_on_arrival_no_rejections;
        ] );
      ( "appraisal",
        [
          Alcotest.test_case "basics" `Quick test_appraisal_basics;
          Alcotest.test_case "raising invariant" `Quick
            test_appraisal_raising_invariant_fails;
          Alcotest.test_case "quarantines corrupted" `Quick
            test_appraisal_quarantines_corrupted_agent;
          Alcotest.test_case "sound agent unaffected" `Quick
            test_appraisal_sound_agent_unaffected;
        ] );
      ("differential", [ QCheck_alcotest.to_alcotest machine_matches_bigstep ]);
      ( "clone",
        [
          Alcotest.test_case "plan shares" `Quick test_clone_plan_shares;
          Alcotest.test_case "more clones than work" `Quick
            test_clone_more_clones_than_work;
          Alcotest.test_case "end to end" `Quick test_clone_end_to_end;
          Alcotest.test_case "guard skips" `Quick test_clone_guard_skips;
        ] );
      ( "world",
        [
          Alcotest.test_case "single agent" `Quick test_world_single_agent;
          Alcotest.test_case "producer/consumer" `Quick
            test_world_producer_consumer;
          Alcotest.test_case "signal ordering" `Quick test_world_signal_ordering;
          Alcotest.test_case "deadlock" `Quick test_world_deadlock_detected;
          Alcotest.test_case "denial policies" `Quick test_world_denial_policies;
          Alcotest.test_case "determinism" `Quick test_world_determinism;
          Alcotest.test_case "spawn validation" `Quick
            test_world_spawn_validation;
          Alcotest.test_case "migration time" `Quick test_world_migration_time;
          Alcotest.test_case "abort releases waiters" `Quick
            test_world_abort_releases_waiters;
          Alcotest.test_case "halt tears down" `Quick
            test_world_halt_tears_down;
          Alcotest.test_case "enumeration order stable" `Quick
            test_world_enumeration_order_stable;
          Alcotest.test_case "SoA = legacy oracle (seeded)" `Slow
            test_world_matches_legacy_oracle;
        ] );
    ]
