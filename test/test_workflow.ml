(* The temporal-workflow scenario family and its satisfiability
   checker.

   The headline property is the differential: over 300+ seeded small
   workflows the checker must agree with the brute-force assignment
   enumerator with *zero* divergences — and agreement is stricter than
   sat/unsat: both searches run in the same lexicographic order with
   only sound pruning on the checker's side, so a satisfiable instance
   must yield the *identical* witness, and every witness must replay to
   completion through Core.System.  Failures shrink to a minimized
   workflow before reporting (Gen.shrink_workflow). *)

module W = Scenarios.Workflow_family
module Sat = Scenarios.Workflow_sat
module Q = Temporal.Q

let counts = [ (W.Satisfiable, 120); (W.Unsatisfiable, 90); (W.Adversarial, 100) ]
let () = assert (List.fold_left (fun n (_, c) -> n + c) 0 counts >= 300)

(* What is wrong with this workflow, if anything — [None] means the
   differential holds and the family promise is kept.  Total, so it
   doubles as the shrinking predicate. *)
let defect fam (wf : W.t) =
  match (Sat.against_brute_force wf, fam) with
  | exception e -> Some ("raised " ^ Printexc.to_string e)
  | Sat.Divergent d, _ -> Some ("divergence: " ^ d)
  | Sat.Agree_unsat _, W.Satisfiable ->
      Some "satisfiable-family instance is unsat"
  | Sat.Agree_sat asg, W.Unsatisfiable ->
      Some
        ("unsatisfiable-family instance completed by "
        ^ String.concat "," (List.map (fun (t, p) -> t ^ "=" ^ p) asg))
  | Sat.Agree_sat asg, _ ->
      (* the witness must replay to completion through Core.System *)
      let outcome = W.run wf asg in
      if not outcome.W.completed then Some "witness does not replay"
      else if
        not
          (List.for_all
             (fun (r : W.task_result) ->
               Coordinated.Decision.is_granted r.W.verdict && r.W.in_window)
             outcome.W.results)
      then Some "witness replay has a denied or out-of-window task"
      else None
  | Sat.Agree_unsat imp, _ ->
      (* the impossibility explanation must render *)
      if String.length (Sat.explain imp) = 0 then Some "empty explanation"
      else None

let fail_minimized ~fam ~salt ~seed wf msg =
  let fails wf = defect fam wf <> None in
  let small = Gen.shrink_workflow ~fails wf in
  Gen.report_minimized ~seed ~what:"workflow" W.pp small;
  Alcotest.failf
    "family %s salt %d seed %d: %s (minimized to %d task(s), %d performer(s))"
    (W.family_name fam) salt seed msg (List.length small.W.tasks)
    (List.length small.W.performers)

let test_differential () =
  let checked = ref 0 in
  List.iter
    (fun (fam, count) ->
      let salt = 6600 + Hashtbl.hash (W.family_name fam) mod 97 in
      Array.iteri
        (fun i wf ->
          incr checked;
          match defect fam wf with
          | None -> ()
          | Some msg -> fail_minimized ~fam ~salt ~seed:(Gen.offset + i) wf msg)
        (Gen.workflows fam ~salt ~count Gen.offset))
    counts;
  Alcotest.(check bool) "at least 300 workflows checked" true (!checked >= 300)

(* The planted witness of the satisfiable family really is the
   lexicographic minimum or later — i.e. the checker's witness always
   completes, and checking is deterministic across calls. *)
let test_checker_deterministic () =
  Gen.each_seed ~salt:6610 ~count:40 (fun ~seed:_ rng ->
      let wf = W.generate W.Adversarial rng in
      let v1 = Sat.check wf and v2 = Sat.check wf in
      Alcotest.(check string)
        "same verdict twice"
        (Format.asprintf "%a" Sat.pp_verdict v1)
        (Format.asprintf "%a" Sat.pp_verdict v2))

let test_generator_deterministic () =
  List.iter
    (fun fam ->
      let a = Gen.workflows fam ~salt:6611 ~count:10 Gen.offset in
      let b = Gen.workflows fam ~salt:6611 ~count:10 Gen.offset in
      Alcotest.(check bool)
        (Printf.sprintf "family %s reproducible" (W.family_name fam))
        true (a = b);
      (* growing the batch never changes existing instances *)
      let c = Gen.workflows fam ~salt:6611 ~count:20 Gen.offset in
      Alcotest.(check bool)
        (Printf.sprintf "family %s prefix-stable" (W.family_name fam))
        true
        (Array.to_list a = Array.to_list (Array.sub c 0 10)))
    [ W.Satisfiable; W.Unsatisfiable; W.Adversarial ]

(* Canonical order and slots: declaration order is kept for ready
   tasks, prerequisites always run earlier, slots are 2k+2. *)
let mk_task ?(window = None) ?(after = []) name =
  { W.name; access = Sral.Access.read "r1" ~at:"s1"; window; after }

let base_perm = Rbac.Perm.make ~operation:"read" ~target:"r1@s1"

let tiny ?duties ?plan ?(tasks = [ mk_task "a" ]) ?(performers = 1) () =
  W.make
    ~users:[ "u1"; "u2" ]
    ~roles:[ "ra" ]
    ~grants:[ ("ra", base_perm) ]
    ~assignments:[ ("u1", "ra"); ("u2", "ra") ]
    ?duties ?plan
    ~performers:
      (List.init performers (fun i ->
           {
             W.id = Printf.sprintf "p%d" (i + 1);
             owner = (if i mod 2 = 0 then "u1" else "u2");
             roles = [ "ra" ];
           }))
    ~tasks ()

let test_canonical_schedule () =
  let wf =
    tiny
      ~tasks:
        [
          mk_task "c" ~after:[ "a" ];
          mk_task "a";
          mk_task "b" ~after:[ "a"; "c" ];
        ]
      ()
  in
  Alcotest.(check (list string))
    "topological, declaration-stable order" [ "a"; "c"; "b" ]
    (List.map (fun (tk : W.task) -> tk.W.name) wf.W.tasks);
  Alcotest.(check string) "slot a" "2" (Q.to_string (W.task_slot wf "a"));
  Alcotest.(check string) "slot c" "4" (Q.to_string (W.task_slot wf "c"));
  Alcotest.(check string) "slot b" "6" (Q.to_string (W.task_slot wf "b"));
  Alcotest.check_raises "cycles rejected"
    (Invalid_argument "Workflow_family.make: task graph has a cycle")
    (fun () ->
      ignore
        (tiny ~tasks:[ mk_task "a" ~after:[ "b" ]; mk_task "b" ~after:[ "a" ] ]
           ()))

(* Point windows sit exactly on the decision slot and are satisfiable:
   Interval.contains is inclusive at both endpoints. *)
let test_point_window_on_slot () =
  let s = W.slot 0 in
  let wf = tiny ~tasks:[ mk_task "a" ~window:(Some (Temporal.Interval.make s s)) ] () in
  (match Sat.check wf with
  | Sat.Complete [ ("a", "p1") ] -> ()
  | v -> Alcotest.failf "expected sat via p1, got %a" Sat.pp_verdict v);
  (* nudge the window off the slot by 1/1000 and it becomes unsat *)
  let eps = Q.make 1 1000 in
  let off = Temporal.Interval.make (Q.add s eps) (Q.add s Q.one) in
  let wf' = tiny ~tasks:[ mk_task "a" ~window:(Some off) ] () in
  match Sat.check wf' with
  | Sat.Impossible (Sat.Window_missed { task = "a"; _ }) -> ()
  | v -> Alcotest.failf "expected window miss, got %a" Sat.pp_verdict v

(* Duty semantics end to end: separation forces two performers, binding
   forces one; with a single performer a separation pair is impossible
   and the checker says why. *)
let test_duties () =
  let tasks = [ mk_task "a"; mk_task "b" ~after:[ "a" ] ] in
  let sep = tiny ~tasks ~duties:[ W.Separation [ "a"; "b" ] ] ~performers:2 () in
  (match Sat.check sep with
  | Sat.Complete [ ("a", "p1"); ("b", "p2") ] -> ()
  | v -> Alcotest.failf "separation: expected p1/p2, got %a" Sat.pp_verdict v);
  let bound = tiny ~tasks ~duties:[ W.Binding [ "a"; "b" ] ] ~performers:2 () in
  (match Sat.check bound with
  | Sat.Complete [ ("a", "p1"); ("b", "p1") ] -> ()
  | v -> Alcotest.failf "binding: expected p1/p1, got %a" Sat.pp_verdict v);
  let starved = tiny ~tasks ~duties:[ W.Separation [ "a"; "b" ] ] ~performers:1 () in
  match Sat.check starved with
  | Sat.Impossible (Sat.Duty_unsatisfiable _) -> ()
  | v -> Alcotest.failf "pigeonhole: expected duty unsat, got %a" Sat.pp_verdict v

(* Crash windows: a plan that downs the task's server over its slot is
   a No_candidate impossibility; the brute force agrees because the
   interpreter denies fail-closed. *)
let test_fail_closed_slot () =
  let plan =
    Fault.Plan.make ~name:"wf-test"
      ~crashes:[ ("s1", [ { Fault.Plan.from_ = Q.of_int 1; until = Q.of_int 5 } ]) ]
      ()
  in
  let wf = tiny ~plan () in
  (match Sat.check wf with
  | Sat.Impossible (Sat.No_candidate { task = "a"; rejected }) ->
      Alcotest.(check bool) "rejection names the server" true
        (List.exists
           (fun (_, why) ->
             (* "server s1 is down at 2" *)
             String.length why >= 6 && String.sub why 0 6 = "server")
           rejected)
  | v -> Alcotest.failf "expected no candidate, got %a" Sat.pp_verdict v);
  Alcotest.(check bool) "brute force agrees" true (Sat.brute_force wf = None);
  (* the window [1,5) is half-open: a task whose slot is exactly 5+
     gets through once the server recovers *)
  let late =
    tiny
      ~plan
      ~tasks:[ mk_task "a"; mk_task "b" ~after:[ "a" ] ]
      ()
  in
  match Sat.check late with
  | Sat.Impossible (Sat.No_candidate { task = "a"; _ }) -> ()
  | v -> Alcotest.failf "slot 2 still inside the crash window: %a" Sat.pp_verdict v

(* to_scenario only accepts canonical prefixes. *)
let test_prefix_discipline () =
  let wf = tiny ~tasks:[ mk_task "a"; mk_task "b" ~after:[ "a" ] ] () in
  ignore (W.to_scenario wf [ ("a", "p1") ]);
  Alcotest.check_raises "out-of-order assignment rejected"
    (Invalid_argument
       "Workflow_family.to_scenario: assignment is not a canonical prefix \
        (expected task \"a\", got \"b\")")
    (fun () -> ignore (W.to_scenario wf [ ("b", "p1") ]));
  Alcotest.check_raises "unknown performer rejected"
    (Invalid_argument "Workflow_family.to_scenario: unknown performer \"ghost\"")
    (fun () -> ignore (W.to_scenario wf [ ("a", "ghost") ]))

(* Deterministic JSONL: the report over a batch is byte-identical
   across two computations, and every line records agreement. *)
let test_report_lines () =
  let batch = Gen.workflows W.Adversarial ~salt:6612 ~count:15 Gen.offset in
  let render () =
    String.concat "\n"
      (Array.to_list
         (Array.mapi
            (fun i wf -> Sat.report_line ~index:i ~family:W.Adversarial wf)
            batch))
  in
  let a = render () in
  Alcotest.(check string) "byte-deterministic" a (render ());
  String.split_on_char '\n' a
  |> List.iter (fun line ->
         Alcotest.(check bool)
           (Printf.sprintf "line records agreement: %s" line)
           true
           (let needle = "\"agree\":true" in
            let rec has i =
              i + String.length needle <= String.length line
              && (String.sub line i (String.length needle) = needle || has (i + 1))
            in
            has 0))

(* Satellite: the greedy shrinkers reach 1-minimal counterexamples. *)
let test_shrink_list () =
  let fails xs = List.mem 7 xs && List.length xs > 0 in
  Alcotest.(check (list int))
    "shrinks to the single blamed element" [ 7 ]
    (Gen.shrink_list ~fails [ 1; 2; 7; 3; 4; 5 ]);
  Alcotest.(check (list int))
    "non-failing input is untouched" [ 1; 2 ]
    (Gen.shrink_list ~fails:(fun _ -> false) [ 1; 2 ])

let test_shrink_coalition () =
  let rng = Random.State.make [| 6613; Gen.offset |] in
  let sc = Gen.coalition rng in
  let has_check (sc : Parallel.Scenario.t) =
    List.exists
      (function Parallel.Scenario.Check _ -> true | _ -> false)
      sc.Parallel.Scenario.events
  in
  Alcotest.(check bool) "generated coalition has checks" true (has_check sc);
  let small = Gen.shrink_coalition ~fails:has_check sc in
  Alcotest.(check int) "one event left"
    1
    (List.length small.Parallel.Scenario.events);
  Alcotest.(check int) "bindings dropped" 0
    (List.length small.Parallel.Scenario.bindings);
  Alcotest.(check int) "grants dropped" 0
    (List.length small.Parallel.Scenario.grants);
  Alcotest.(check bool) "still fails" true (has_check small)

let test_shrink_workflow () =
  let wf, _ = W.satisfiable ~tasks:5 ~performers:3 (Random.State.make [| 6614; Gen.offset |]) in
  (* ensure there is something to find: plant a separation duty *)
  let wf =
    match wf.W.duties with
    | _ :: _ when List.exists (function W.Separation _ -> true | _ -> false) wf.W.duties
      -> wf
    | _ ->
        let a = (List.nth wf.W.tasks 0).W.name
        and b = (List.nth wf.W.tasks 1).W.name in
        W.make ~users:wf.W.users ~roles:wf.W.roles ~grants:wf.W.grants
          ~assignments:wf.W.assignments ~bindings:wf.W.bindings
          ~duties:(W.Separation [ a; b ] :: wf.W.duties)
          ?plan:wf.W.plan ~performers:wf.W.performers ~tasks:wf.W.tasks ()
  in
  let has_sep (wf : W.t) =
    List.exists (function W.Separation _ -> true | _ -> false) wf.W.duties
  in
  let small = Gen.shrink_workflow ~fails:has_sep wf in
  Alcotest.(check bool) "still fails" true (has_sep small);
  Alcotest.(check int) "exactly the blamed duty" 1 (List.length small.W.duties);
  Alcotest.(check int) "tasks down to the duty pair" 2
    (List.length small.W.tasks);
  Alcotest.(check int) "performers dropped" 0 (List.length small.W.performers);
  Alcotest.(check int) "grants dropped" 0 (List.length small.W.grants)

(* [reproduces] converts raising properties into total predicates. *)
let test_reproduces () =
  Alcotest.(check bool) "raising reproduces" true
    (Gen.reproduces (fun _ -> failwith "boom") ());
  Alcotest.(check bool) "passing does not" false (Gen.reproduces ignore ())

let () =
  Alcotest.run "workflow"
    [
      ( "differential",
        [
          Alcotest.test_case "checker = brute force over 300+ workflows" `Slow
            test_differential;
          Alcotest.test_case "checker deterministic" `Quick
            test_checker_deterministic;
          Alcotest.test_case "generators reproducible" `Quick
            test_generator_deterministic;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "canonical schedule" `Quick test_canonical_schedule;
          Alcotest.test_case "point window on slot" `Quick
            test_point_window_on_slot;
          Alcotest.test_case "separation and binding duties" `Quick test_duties;
          Alcotest.test_case "fail-closed crash slots" `Quick
            test_fail_closed_slot;
          Alcotest.test_case "prefix discipline" `Quick test_prefix_discipline;
          Alcotest.test_case "deterministic report lines" `Quick
            test_report_lines;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "lists" `Quick test_shrink_list;
          Alcotest.test_case "coalitions" `Quick test_shrink_coalition;
          Alcotest.test_case "workflows" `Quick test_shrink_workflow;
          Alcotest.test_case "reproduces" `Quick test_reproduces;
        ] );
    ]
