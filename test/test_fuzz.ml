(* Randomized whole-system invariant tests ("failure injection"):
   random policies, random programs, random binding mixes — after every
   run the audit log, the proof stores and the RBAC policy must agree
   with each other.  These are the safety properties of the model
   itself, checked on inputs nobody wrote by hand. *)

module Q = Temporal.Q

let resources = [ "r1"; "r2"; "r3" ]

let random_policy rng =
  (* 2 users, 3 roles with random grants and assignments *)
  let policy = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user policy) [ "u1"; "u2" ];
  List.iter (Rbac.Policy.add_role policy) [ "ra"; "rb"; "rc" ];
  let ops = [ "read"; "write"; "execute" ] in
  List.iter
    (fun role ->
      List.iter
        (fun op ->
          if Random.State.bool rng then
            let target =
              match Random.State.int rng 3 with
              | 0 -> "*@*"
              | 1 -> List.nth resources (Random.State.int rng 3) ^ "@*"
              | _ ->
                  List.nth resources (Random.State.int rng 3)
                  ^ "@s"
                  ^ string_of_int (1 + Random.State.int rng 2)
            in
            Rbac.Policy.grant policy role (Rbac.Perm.make ~operation:op ~target))
        ops)
    [ "ra"; "rb"; "rc" ];
  List.iter
    (fun u ->
      List.iter
        (fun r ->
          if Random.State.bool rng then
            Rbac.Policy.assign_user policy u r)
        [ "ra"; "rb"; "rc" ])
    [ "u1"; "u2" ];
  policy

let random_bindings rng =
  let sel = Srac.Selector.Resource (List.nth resources (Random.State.int rng 3)) in
  List.filteri
    (fun _ _ -> Random.State.bool rng)
    [
      Coordinated.Perm_binding.make
        ~spatial:(Srac.Formula.at_most (1 + Random.State.int rng 4) sel)
        ~spatial_scope:Coordinated.Perm_binding.Performed
        (Rbac.Perm.make ~operation:"*" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (2 + Random.State.int rng 10))
        (Rbac.Perm.make ~operation:"read" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (1 + Random.State.int rng 5))
        ~scheme:Temporal.Validity.Per_server
        (Rbac.Perm.make ~operation:"write" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~spatial:
          (Srac.Formula.at_most
             (2 + Random.State.int rng 4)
             (Srac.Selector.Op Sral.Access.Execute))
        ~spatial_scope:Coordinated.Perm_binding.Performed
        ~proof_scope:Coordinated.Perm_binding.Team
        (Rbac.Perm.make ~operation:"execute" ~target:"*@*");
    ]

let build_world rng =
  let policy = random_policy rng in
  let bindings = random_bindings rng in
  let control = Coordinated.System.create ~bindings policy in
  let world = Naplet.World.create control in
  let servers = [ "s1"; "s2" ] in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    servers;
  let agents = 1 + Random.State.int rng 4 in
  for i = 1 to agents do
    let owner = if Random.State.bool rng then "u1" else "u2" in
    let program =
      Sral.Generate.program ~allow_io:false ~resources ~servers
        ~size:(4 + Random.State.int rng 8)
        rng
    in
    let team =
      if Random.State.bool rng then Some "crew"
      else if Random.State.bool rng then Some "other"
      else None
    in
    Naplet.World.spawn ?team world
      ~id:(Printf.sprintf "agent%d" i)
      ~owner
      ~roles:[ "ra"; "rb"; "rc" ]
      ~home:"s1" program
  done;
  (control, world)

let each_seed f =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| 7777; seed |] in
      f seed rng)
    (List.init 40 Fun.id)

(* 1. Soundness of grants: every granted access was allowed by some
   role the owner is actually authorized for. *)
let test_grants_are_rbac_sound () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      let policy = Coordinated.System.policy control in
      List.iter
        (fun (e : Coordinated.Audit_log.entry) ->
          if Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict
          then begin
            let owner =
              match
                Naplet.World.agent world e.Coordinated.Audit_log.object_id
              with
              | Some a -> a.Naplet.Agent.owner
              | None -> Alcotest.fail "granted access by unknown agent"
            in
            let a = e.Coordinated.Audit_log.access in
            let allowed =
              List.exists
                (fun perm ->
                  Rbac.Perm.matches perm
                    ~operation:(Sral.Access.operation_name a.Sral.Access.op)
                    ~target:
                      (a.Sral.Access.resource ^ "@" ^ a.Sral.Access.server))
                (Rbac.Policy.user_permissions policy owner)
            in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: grant is authorized" seed)
              true allowed
          end)
        (Coordinated.Audit_log.entries (Coordinated.System.log control)))

(* 2. Proofs = grants: each object's performed trace is exactly its
   granted audit entries, in order. *)
let test_proofs_match_audit_log () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      let log = Coordinated.System.log control in
      List.iter
        (fun (agent : Naplet.Agent.t) ->
          let id = agent.Naplet.Agent.id in
          let monitor = Coordinated.System.monitor control ~object_id:id in
          let performed = Coordinated.Monitor.performed monitor in
          let granted =
            List.filter_map
              (fun (e : Coordinated.Audit_log.entry) ->
                if
                  String.equal e.Coordinated.Audit_log.object_id id
                  && Coordinated.Decision.is_granted
                       e.Coordinated.Audit_log.verdict
                then Some e.Coordinated.Audit_log.access
                else None)
              (Coordinated.Audit_log.entries log)
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: %s proofs = grants" seed id)
            true
            (Sral.Trace.equal performed granted))
        (Naplet.World.agents world))

(* 3. Determinism: the same seed yields bit-identical metrics and audit
   logs. *)
let test_deterministic_replay () =
  each_seed (fun seed _ ->
      let run () =
        let rng = Random.State.make [| 7777; seed |] in
        let control, world = build_world rng in
        let metrics = Naplet.World.run world in
        let log_render =
          Format.asprintf "%a" Coordinated.Audit_log.pp
            (Coordinated.System.log control)
        in
        ( metrics.Naplet.Metrics.granted,
          metrics.Naplet.Metrics.denied,
          Q.to_string metrics.Naplet.Metrics.end_time,
          log_render )
      in
      let r1 = run () and r2 = run () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: replay identical" seed)
        true (r1 = r2))

(* 4. Metric consistency: granted + denied = audit entries; agent
   status counts partition the population. *)
let test_metric_consistency () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      let metrics = Naplet.World.run world in
      let log = Coordinated.System.log control in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: log size" seed)
        (Coordinated.Audit_log.size log)
        (metrics.Naplet.Metrics.granted + metrics.Naplet.Metrics.denied);
      let agents = Naplet.World.agents world in
      let finished =
        metrics.Naplet.Metrics.completed_agents
        + metrics.Naplet.Metrics.aborted_agents
        + metrics.Naplet.Metrics.deadlocked_agents
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: statuses partition agents" seed)
        (List.length agents) finished)

(* 5. Budget safety: with a per-read duration binding, no object's read
   grants exceed what the budget could possibly allow. *)
let test_duration_budget_never_negative () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      List.iter
        (fun (agent : Naplet.Agent.t) ->
          let monitor =
            Coordinated.System.monitor control
              ~object_id:agent.Naplet.Agent.id
          in
          List.iter
            (fun (binding : Coordinated.Perm_binding.t) ->
              match binding.Coordinated.Perm_binding.dur with
              | None -> ()
              | Some dur -> (
                  match Coordinated.Monitor.arrivals monitor with
                  | [] -> ()
                  | arrivals ->
                      let active =
                        Coordinated.Monitor.activation_fn monitor
                          ~key:(Coordinated.Perm_binding.key binding)
                      in
                      let spent =
                        Temporal.Validity.spent
                          ~scheme:binding.Coordinated.Perm_binding.scheme
                          ~arrivals ~dur:(Some dur) active
                          ~at:(Coordinated.Monitor.now monitor)
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf "seed %d: spent <= dur" seed)
                        true (Q.le spent dur)))
            (Coordinated.System.bindings control))
        (Naplet.World.agents world))

(* ------------------------------------------------------------------ *)
(* Differential testing: the indexed/cached decision path vs the seed's
   linear path.  A scenario is generated once as pure data (policy
   spec, bindings, objects, event stream) and interpreted twice — once
   against a System in [Indexed] mode, once in [Naive] mode.  Every
   check's verdict (rendered, so denial *reasons* are compared too) and
   the final audit logs must agree entry-for-entry. *)

type diff_object = {
  d_id : string;
  d_owner : string;
  d_roles : string list;
  d_program : Sral.Ast.t;
}

type diff_event =
  | Arrive of string * string  (* object, server *)
  | Check of string * Sral.Access.t
  | Activate of string * string  (* object, role *)
  | Deactivate of string * string
  | Join of string * string  (* object, team *)
  | Refresh of string
  | Add_binding of Coordinated.Perm_binding.t

type scenario = {
  sc_grants : (string * Rbac.Perm.t) list;  (* role, perm *)
  sc_assignments : (string * string) list;  (* user, role *)
  sc_bindings : Coordinated.Perm_binding.t list;
  sc_objects : diff_object list;
  sc_events : diff_event list;
}

let diff_servers = [ "s1"; "s2" ]
let diff_roles = [ "ra"; "rb"; "rc" ]

let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let random_access rng =
  Sral.Generate.access
    ~ops:[ Sral.Access.Read; Sral.Access.Write; Sral.Access.Execute ]
    ~resources ~servers:diff_servers rng

(* the seed generator's binding mix, plus program-scope and Both-scope
   shapes so the verdict cache's memo-reuse and team stamps are hit *)
let random_diff_bindings rng =
  random_bindings rng
  @ List.filteri
      (fun _ _ -> Random.State.bool rng)
      [
        Coordinated.Perm_binding.make
          ~spatial:
            (Srac.Formula.at_most
               (1 + Random.State.int rng 3)
               (Srac.Selector.Resource (pick rng resources)))
          ~spatial_modality:
            (if Random.State.bool rng then Srac.Program_sat.Exists
             else Srac.Program_sat.Forall)
          ~spatial_scope:Coordinated.Perm_binding.Program
          (Rbac.Perm.make ~operation:"read" ~target:"*@*");
        Coordinated.Perm_binding.make
          ~spatial:
            (Srac.Formula.at_most
               (1 + Random.State.int rng 4)
               (Srac.Selector.Op Sral.Access.Write))
          ~spatial_scope:Coordinated.Perm_binding.Both
          ~proof_scope:Coordinated.Perm_binding.Team
          ~dur:(Q.of_int (3 + Random.State.int rng 8))
          (Rbac.Perm.make ~operation:"write" ~target:"*@*");
      ]

let random_scenario rng =
  let sc_grants =
    List.concat_map
      (fun role ->
        List.filter_map
          (fun op ->
            if Random.State.bool rng then
              let target =
                match Random.State.int rng 3 with
                | 0 -> "*@*"
                | 1 -> pick rng resources ^ "@*"
                | _ -> pick rng resources ^ "@" ^ pick rng diff_servers
              in
              Some (role, Rbac.Perm.make ~operation:op ~target)
            else None)
          [ "read"; "write"; "execute" ])
      diff_roles
  in
  let sc_assignments =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun r -> if Random.State.bool rng then Some (u, r) else None)
          diff_roles)
      [ "u1"; "u2" ]
  in
  let sc_objects =
    List.init
      (2 + Random.State.int rng 3)
      (fun i ->
        {
          d_id = Printf.sprintf "o%d" (i + 1);
          d_owner = (if Random.State.bool rng then "u1" else "u2");
          d_roles = List.filter (fun _ -> Random.State.bool rng) diff_roles;
          d_program =
            Sral.Generate.program ~allow_io:false ~resources
              ~servers:diff_servers
              ~size:(3 + Random.State.int rng 6)
              rng;
        })
  in
  let extra_bindings = random_diff_bindings rng in
  let obj () = (pick rng sc_objects).d_id in
  let sc_events =
    (* everyone arrives somewhere first, then a random event stream *)
    List.map (fun o -> Arrive (o.d_id, pick rng diff_servers)) sc_objects
    @ List.init
        (15 + Random.State.int rng 25)
        (fun _ ->
          match Random.State.int rng 12 with
          | 0 | 1 -> Arrive (obj (), pick rng diff_servers)
          | 2 -> Join (obj (), if Random.State.bool rng then "crew" else "b-team")
          | 3 -> Activate (obj (), pick rng diff_roles)
          | 4 -> Deactivate (obj (), pick rng diff_roles)
          | 5 when extra_bindings <> [] -> Add_binding (pick rng extra_bindings)
          | 6 -> Refresh (obj ())
          | _ -> Check (obj (), random_access rng))
  in
  { sc_grants; sc_assignments; sc_bindings = random_diff_bindings rng;
    sc_objects; sc_events }

let run_scenario mode sc =
  let policy = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user policy) [ "u1"; "u2" ];
  List.iter (Rbac.Policy.add_role policy) diff_roles;
  List.iter (fun (r, p) -> Rbac.Policy.grant policy r p) sc.sc_grants;
  List.iter (fun (u, r) -> Rbac.Policy.assign_user policy u r) sc.sc_assignments;
  let control = Coordinated.System.create ~mode ~bindings:sc.sc_bindings policy in
  let sessions = Hashtbl.create 8 in
  let find_obj id = List.find (fun o -> String.equal o.d_id id) sc.sc_objects in
  let session_of id =
    match Hashtbl.find_opt sessions id with
    | Some s -> s
    | None ->
        let o = find_obj id in
        let s = Coordinated.System.new_session control ~user:o.d_owner in
        List.iter
          (fun r ->
            try Rbac.Session.activate s r with
            | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ -> ())
          o.d_roles;
        Hashtbl.add sessions id s;
        s
  in
  let verdicts = ref [] in
  List.iteri
    (fun i event ->
      let time = Q.of_int (i + 1) in
      match event with
      | Arrive (id, server) ->
          Coordinated.System.arrive control ~object_id:id ~server ~time
      | Join (id, team) ->
          Coordinated.System.join_team control ~object_id:id ~team
      | Activate (id, r) -> (
          try Rbac.Session.activate (session_of id) r with
          | Rbac.Session.Not_authorized _ | Rbac.Session.Dsd_violation _ -> ())
      | Deactivate (id, r) -> Rbac.Session.deactivate (session_of id) r
      | Add_binding b -> Coordinated.System.add_binding control b
      | Refresh id ->
          let o = find_obj id in
          Coordinated.System.refresh control ~session:(session_of id)
            ~object_id:id ~program:o.d_program ~time
      | Check (id, access) ->
          let o = find_obj id in
          let v =
            Coordinated.System.check control ~session:(session_of id)
              ~object_id:id ~program:o.d_program ~time access
          in
          verdicts :=
            Format.asprintf "%a" Coordinated.Decision.pp_verdict v :: !verdicts)
    sc.sc_events;
  let log_render =
    Format.asprintf "%a" Coordinated.Audit_log.pp (Coordinated.System.log control)
  in
  (List.rev !verdicts, log_render)

let diff_runs = 500

let test_differential_indexed_vs_naive () =
  for seed = 0 to diff_runs - 1 do
    let sc = random_scenario (Random.State.make [| 4242; seed |]) in
    let v_fast, log_fast = run_scenario Coordinated.System.Indexed sc in
    let v_naive, log_naive = run_scenario Coordinated.System.Naive sc in
    if v_fast <> v_naive then begin
      let rec first_diff i = function
        | f :: fs, n :: ns ->
            if String.equal f n then first_diff (i + 1) (fs, ns) else (i, f, n)
        | f :: _, [] -> (i, f, "<missing>")
        | [], n :: _ -> (i, "<missing>", n)
        | [], [] -> (i, "<equal>", "<equal>")
      in
      let i, f, n = first_diff 0 (v_fast, v_naive) in
      Alcotest.failf
        "seed %d: verdict %d diverges@.  indexed: %s@.  naive:   %s" seed i f n
    end;
    if not (String.equal log_fast log_naive) then
      Alcotest.failf "seed %d: audit logs diverge@.indexed:@.%s@.naive:@.%s"
        seed log_fast log_naive
  done

(* Repeating the identical check must hit the verdict cache and still
   agree with the naive path — the cache must never leak a stale
   verdict into the comparison. *)
let test_differential_repeated_checks () =
  for seed = 0 to 99 do
    let rng = Random.State.make [| 31337; seed |] in
    let sc = random_scenario rng in
    (* duplicate every check event so roughly half the indexed decisions
       are cache hits *)
    let sc =
      {
        sc with
        sc_events =
          List.concat_map
            (function
              | Check _ as e -> [ e; e ]
              | e -> [ e ])
            sc.sc_events;
      }
    in
    let v_fast, log_fast = run_scenario Coordinated.System.Indexed sc in
    let v_naive, log_naive = run_scenario Coordinated.System.Naive sc in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: repeated-check verdicts agree" seed)
      true
      (v_fast = v_naive && String.equal log_fast log_naive)
  done

let () =
  Alcotest.run "fuzz"
    [
      ( "invariants",
        [
          Alcotest.test_case "grants are rbac-sound" `Quick
            test_grants_are_rbac_sound;
          Alcotest.test_case "proofs match audit log" `Quick
            test_proofs_match_audit_log;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "metric consistency" `Quick
            test_metric_consistency;
          Alcotest.test_case "duration budget" `Quick
            test_duration_budget_never_negative;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "indexed = naive over %d coalitions" diff_runs)
            `Quick test_differential_indexed_vs_naive;
          Alcotest.test_case "cache hits stay faithful" `Quick
            test_differential_repeated_checks;
        ] );
    ]
