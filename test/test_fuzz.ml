(* Randomized whole-system invariant tests ("failure injection"):
   random policies, random programs, random binding mixes — after every
   run the audit log, the proof stores and the RBAC policy must agree
   with each other.  These are the safety properties of the model
   itself, checked on inputs nobody wrote by hand. *)

module Q = Temporal.Q

let resources = [ "r1"; "r2"; "r3" ]

(* Policies and bindings come from the shared seeded generator
   ([test/gen.ml], backed by [Parallel.Workload]) — one definition of
   "a random coalition" across every randomized suite. *)
let build_world rng =
  let policy = Gen.policy rng in
  let bindings = Gen.bindings rng in
  let control = Coordinated.System.create ~bindings policy in
  let world = Naplet.World.create control in
  let servers = [ "s1"; "s2" ] in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    servers;
  let agents = 1 + Random.State.int rng 4 in
  for i = 1 to agents do
    let owner = if Random.State.bool rng then "u1" else "u2" in
    let program =
      Sral.Generate.program ~allow_io:false ~resources ~servers
        ~size:(4 + Random.State.int rng 8)
        rng
    in
    let team =
      if Random.State.bool rng then Some "crew"
      else if Random.State.bool rng then Some "other"
      else None
    in
    Naplet.World.spawn ?team world
      ~id:(Printf.sprintf "agent%d" i)
      ~owner
      ~roles:[ "ra"; "rb"; "rc" ]
      ~home:"s1" program
  done;
  (control, world)

let each_seed f = Gen.each_seed ~salt:7777 ~count:40 (fun ~seed rng -> f seed rng)

(* 1. Soundness of grants: every granted access was allowed by some
   role the owner is actually authorized for. *)
let test_grants_are_rbac_sound () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      let policy = Coordinated.System.policy control in
      List.iter
        (fun (e : Coordinated.Audit_log.entry) ->
          if Coordinated.Decision.is_granted e.Coordinated.Audit_log.verdict
          then begin
            let owner =
              match
                Naplet.World.agent world e.Coordinated.Audit_log.object_id
              with
              | Some a -> a.Naplet.Agent.owner
              | None -> Alcotest.fail "granted access by unknown agent"
            in
            let a = e.Coordinated.Audit_log.access in
            let allowed =
              List.exists
                (fun perm ->
                  Rbac.Perm.matches perm
                    ~operation:(Sral.Access.operation_name a.Sral.Access.op)
                    ~target:
                      (a.Sral.Access.resource ^ "@" ^ a.Sral.Access.server))
                (Rbac.Policy.user_permissions policy owner)
            in
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: grant is authorized" seed)
              true allowed
          end)
        (Coordinated.Audit_log.entries (Coordinated.System.log control)))

(* 2. Proofs = grants: each object's performed trace is exactly its
   granted audit entries, in order. *)
let test_proofs_match_audit_log () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      let log = Coordinated.System.log control in
      List.iter
        (fun (agent : Naplet.Agent.t) ->
          let id = agent.Naplet.Agent.id in
          let monitor = Coordinated.System.monitor control ~object_id:id in
          let performed = Coordinated.Monitor.performed monitor in
          let granted =
            List.filter_map
              (fun (e : Coordinated.Audit_log.entry) ->
                if
                  String.equal e.Coordinated.Audit_log.object_id id
                  && Coordinated.Decision.is_granted
                       e.Coordinated.Audit_log.verdict
                then Some e.Coordinated.Audit_log.access
                else None)
              (Coordinated.Audit_log.entries log)
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: %s proofs = grants" seed id)
            true
            (Sral.Trace.equal performed granted))
        (Naplet.World.agents world))

(* 3. Determinism: the same seed yields bit-identical metrics and audit
   logs. *)
let test_deterministic_replay () =
  each_seed (fun seed _ ->
      let run () =
        let rng = Random.State.make [| 7777; seed |] in
        let control, world = build_world rng in
        let metrics = Naplet.World.run world in
        let log_render =
          Format.asprintf "%a" Coordinated.Audit_log.pp
            (Coordinated.System.log control)
        in
        ( metrics.Naplet.Metrics.granted,
          metrics.Naplet.Metrics.denied,
          Q.to_string metrics.Naplet.Metrics.end_time,
          log_render )
      in
      let r1 = run () and r2 = run () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: replay identical" seed)
        true (r1 = r2))

(* 4. Metric consistency: granted + denied = audit entries; agent
   status counts partition the population. *)
let test_metric_consistency () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      let metrics = Naplet.World.run world in
      let log = Coordinated.System.log control in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: log size" seed)
        (Coordinated.Audit_log.size log)
        (metrics.Naplet.Metrics.granted + metrics.Naplet.Metrics.denied);
      let agents = Naplet.World.agents world in
      let finished =
        metrics.Naplet.Metrics.completed_agents
        + metrics.Naplet.Metrics.aborted_agents
        + metrics.Naplet.Metrics.deadlocked_agents
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: statuses partition agents" seed)
        (List.length agents) finished)

(* 5. Budget safety: with a per-read duration binding, no object's read
   grants exceed what the budget could possibly allow. *)
let test_duration_budget_never_negative () =
  each_seed (fun seed rng ->
      let control, world = build_world rng in
      ignore (Naplet.World.run world);
      List.iter
        (fun (agent : Naplet.Agent.t) ->
          let monitor =
            Coordinated.System.monitor control
              ~object_id:agent.Naplet.Agent.id
          in
          List.iter
            (fun (binding : Coordinated.Perm_binding.t) ->
              match binding.Coordinated.Perm_binding.dur with
              | None -> ()
              | Some dur -> (
                  match Coordinated.Monitor.arrivals monitor with
                  | [] -> ()
                  | arrivals ->
                      let active =
                        Coordinated.Monitor.activation_fn monitor
                          ~key:(Coordinated.Perm_binding.key binding)
                      in
                      let spent =
                        Temporal.Validity.spent
                          ~scheme:binding.Coordinated.Perm_binding.scheme
                          ~arrivals ~dur:(Some dur) active
                          ~at:(Coordinated.Monitor.now monitor)
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf "seed %d: spent <= dur" seed)
                        true (Q.le spent dur)))
            (Coordinated.System.bindings control))
        (Naplet.World.agents world))

(* ------------------------------------------------------------------ *)
(* Differential testing: the indexed/cached decision path vs the seed's
   linear path.  A coalition is generated once as pure data
   ([Gen.coalition], the shared [Parallel.Workload] generator) and
   interpreted twice by [Parallel.Scenario.run] — once in [Indexed]
   mode, once in [Naive] mode.  Every check's verdict (rendered, so
   denial *reasons* are compared too) and the final audit logs must
   agree entry-for-entry. *)

let run_scenario mode sc =
  let o = Parallel.Scenario.run ~mode sc in
  (o.Parallel.Scenario.verdicts, o.Parallel.Scenario.log)

let diff_runs = 500

let test_differential_indexed_vs_naive () =
  Gen.each_seed ~salt:4242 ~count:diff_runs (fun ~seed rng ->
      let sc = Gen.coalition rng in
      let v_fast, log_fast = run_scenario Coordinated.System.Indexed sc in
      let v_naive, log_naive = run_scenario Coordinated.System.Naive sc in
      if v_fast <> v_naive then begin
        let rec first_diff i = function
          | f :: fs, n :: ns ->
              if String.equal f n then first_diff (i + 1) (fs, ns) else (i, f, n)
          | f :: _, [] -> (i, f, "<missing>")
          | [], n :: _ -> (i, "<missing>", n)
          | [], [] -> (i, "<equal>", "<equal>")
        in
        let i, f, n = first_diff 0 (v_fast, v_naive) in
        Alcotest.failf
          "seed %d: verdict %d diverges@.  indexed: %s@.  naive:   %s" seed i f
          n
      end;
      if not (String.equal log_fast log_naive) then
        Alcotest.failf "seed %d: audit logs diverge@.indexed:@.%s@.naive:@.%s"
          seed log_fast log_naive)

(* Repeating the identical check must hit the verdict cache and still
   agree with the naive path — the cache must never leak a stale
   verdict into the comparison. *)
let test_differential_repeated_checks () =
  Gen.each_seed ~salt:31337 ~count:100 (fun ~seed rng ->
      let sc = Gen.coalition rng in
      (* duplicate every check event so roughly half the indexed
         decisions are cache hits *)
      let sc =
        {
          sc with
          Parallel.Scenario.events =
            List.concat_map
              (function
                | Parallel.Scenario.Check _ as e -> [ e; e ] | e -> [ e ])
              sc.Parallel.Scenario.events;
        }
      in
      let v_fast, log_fast = run_scenario Coordinated.System.Indexed sc in
      let v_naive, log_naive = run_scenario Coordinated.System.Naive sc in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: repeated-check verdicts agree" seed)
        true
        (v_fast = v_naive && String.equal log_fast log_naive))

(* ------------------------------------------------------------------ *)
(* Differential testing: the lazy-derivative decision path vs the
   seed's linear path.  Stronger gate than the indexed one: besides
   verdicts (with denial reasons) and audit logs, the *entire bus
   trace* — every Stage_start/Stage_end span, every Decision and
   Arrival event — must render byte-identically, because decide_lazy
   promises the naive path's exact observable behavior.  Failing
   coalitions are shrunk to a local minimum before reporting. *)

let render_trace events =
  String.concat "\n" (List.map (Format.asprintf "%a" Obs.Trace.pp) events)

(* a readable rendering of a (shrunk) coalition for failure reports *)
let pp_coalition ppf (sc : Parallel.Scenario.t) =
  let module S = Parallel.Scenario in
  Format.fprintf ppf "@[<v>%d objects, %d bindings, %d grants@,"
    (List.length sc.S.objects)
    (List.length sc.S.bindings)
    (List.length sc.S.grants);
  List.iter
    (fun (o : S.obj) ->
      Format.fprintf ppf "object %s owner=%s roles=%s program=%a@," o.S.id
        o.S.owner
        (String.concat "," o.S.roles)
        Sral.Pretty.pp o.S.program)
    sc.S.objects;
  List.iteri
    (fun i ev ->
      match ev with
      | S.Arrive (o, s) -> Format.fprintf ppf "t%d: %s arrives %s@," (i + 1) o s
      | S.Check (o, a) ->
          Format.fprintf ppf "t%d: %s checks %a@," (i + 1) o Sral.Access.pp a
      | S.Activate (o, r) ->
          Format.fprintf ppf "t%d: %s activates %s@," (i + 1) o r
      | S.Deactivate (o, r) ->
          Format.fprintf ppf "t%d: %s deactivates %s@," (i + 1) o r
      | S.Join (o, team) ->
          Format.fprintf ppf "t%d: %s joins %s@," (i + 1) o team
      | S.Refresh o -> Format.fprintf ppf "t%d: refresh %s@," (i + 1) o
      | S.Add_binding b ->
          Format.fprintf ppf "t%d: add binding %s@," (i + 1)
            (Coordinated.Perm_binding.key b))
    sc.S.events;
  Format.fprintf ppf "@]"

let test_differential_lazy_vs_naive () =
  Gen.each_seed ~salt:4243 ~count:diff_runs (fun ~seed rng ->
      let sc = Gen.coalition rng in
      let diverges sc =
        let o_lazy = Parallel.Scenario.run ~mode:Coordinated.System.Lazy sc in
        let o_naive = Parallel.Scenario.run ~mode:Coordinated.System.Naive sc in
        o_lazy.Parallel.Scenario.verdicts <> o_naive.Parallel.Scenario.verdicts
        || not (String.equal o_lazy.Parallel.Scenario.log o_naive.Parallel.Scenario.log)
        || not
             (String.equal
                (render_trace o_lazy.Parallel.Scenario.trace)
                (render_trace o_naive.Parallel.Scenario.trace))
      in
      if diverges sc then begin
        Gen.report_minimized ~seed ~what:"coalition" pp_coalition
          (Gen.shrink_coalition ~fails:diverges sc);
        Alcotest.failf "seed %d: lazy path diverges from the naive oracle" seed
      end)

(* Duplicated checks make the second decision of each pair hit the
   warm, fully-memoized lazy path — residual states, RBAC stamps,
   cursors all populated — and it must still be span-identical. *)
let test_differential_lazy_repeated_checks () =
  Gen.each_seed ~salt:31338 ~count:100 (fun ~seed rng ->
      let sc = Gen.coalition rng in
      let sc =
        {
          sc with
          Parallel.Scenario.events =
            List.concat_map
              (function
                | Parallel.Scenario.Check _ as e -> [ e; e ] | e -> [ e ])
              sc.Parallel.Scenario.events;
        }
      in
      let o_lazy = Parallel.Scenario.run ~mode:Coordinated.System.Lazy sc in
      let o_naive = Parallel.Scenario.run ~mode:Coordinated.System.Naive sc in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: warm lazy path stays faithful" seed)
        true
        (o_lazy.Parallel.Scenario.verdicts = o_naive.Parallel.Scenario.verdicts
        && String.equal o_lazy.Parallel.Scenario.log
             o_naive.Parallel.Scenario.log
        && String.equal
             (render_trace o_lazy.Parallel.Scenario.trace)
             (render_trace o_naive.Parallel.Scenario.trace)))

(* The uninstrumented branch ([?obs:None], the zero-allocation one)
   has no bus to compare, so drive Decision.decide_lazy and
   Decision.decide_naive directly against side-by-side monitors fed
   identical histories: verdicts, clock movement and change epochs
   must stay in lockstep through arrivals, refreshes, role flips and
   grants. *)
let test_differential_lazy_direct () =
  let module D = Coordinated.Decision in
  let module M = Coordinated.Monitor in
  Gen.each_seed ~salt:4244 ~count:300 (fun ~seed rng ->
      let policy = Gen.policy rng in
      let bindings = Gen.bindings rng in
      let index = Coordinated.Binding_index.of_list bindings in
      let servers = [ "s1"; "s2" ] in
      let user = if Random.State.bool rng then "u1" else "u2" in
      let session = Rbac.Session.create policy ~user in
      let toggle_role () =
        let r = Gen.pick rng [ "ra"; "rb"; "rc" ] in
        if List.mem r (Rbac.Session.active_roles session) then
          Rbac.Session.deactivate session r
        else try Rbac.Session.activate session r with _ -> ()
      in
      toggle_role ();
      toggle_role ();
      let program =
        Sral.Generate.program ~allow_io:false ~resources ~servers
          ~size:(4 + Random.State.int rng 8)
          rng
      in
      let m_lazy = M.create ~object_id:"obj" in
      let m_naive = M.create ~object_id:"obj" in
      let random_access () =
        let r = Gen.pick rng resources and s = Gen.pick rng servers in
        if Random.State.bool rng then Sral.Access.read r ~at:s
        else Sral.Access.write r ~at:s
      in
      let time = ref Q.zero in
      for step = 1 to 25 do
        time := Q.add !time Q.one;
        match Random.State.int rng 6 with
        | 0 ->
            let server = Gen.pick rng servers in
            M.record_arrival m_lazy ~server ~time:!time;
            M.record_arrival m_naive ~server ~time:!time
        | 1 ->
            D.refresh_activation ~session ~monitor:m_naive ~bindings ~program
              ~time:!time ();
            D.refresh_activation_lazy ~session ~monitor:m_lazy ~bindings
              ~team_version:0 ~team_history:0 ~program ~time:!time ()
        | 2 -> toggle_role ()
        | _ -> (
            let access = random_access () in
            let v_naive =
              D.decide_naive ~session ~monitor:m_naive ~bindings ~program
                ~time:!time access
            in
            let v_lazy =
              D.decide_lazy ~session ~monitor:m_lazy
                ~applicable:(Coordinated.Binding_index.applicable index access)
                ~team_version:0 ~team_history:0 ~program ~time:!time access
            in
            if v_naive <> v_lazy then
              Alcotest.failf
                "seed %d step %d: %a (lazy) vs %a (naive) on %a" seed step
                D.pp_verdict v_lazy D.pp_verdict v_naive Sral.Access.pp access;
            match v_naive with
            | D.Granted ->
                M.record_access m_lazy access ~time:!time;
                M.record_access m_naive access ~time:!time
            | D.Denied _ -> ())
      done;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: monitors moved in lockstep" seed)
        true
        (Q.equal (M.now m_lazy) (M.now m_naive)
        && M.location_epoch m_lazy = M.location_epoch m_naive
        && M.activation_epoch m_lazy = M.activation_epoch m_naive
        && M.history_epoch m_lazy = M.history_epoch m_naive))

(* 8. The temporal-workflow family as a fuzz workload: the model-level
   safety properties must hold on workflow-shaped runs too.  (a) The
   satisfiable family's planted witness really completes and the
   checker's own witness replays; (b) the unsatisfiable family never
   completes under *any* assignment the checker or brute force can
   find; (c) the checker's verdict is decision-mode independent —
   Indexed vs Naive is a cache strategy, not a semantics. *)
let test_workflow_family_invariants () =
  let module W = Scenarios.Workflow_family in
  let module Sat = Scenarios.Workflow_sat in
  Gen.each_seed ~salt:7778 ~count:30 (fun ~seed rng ->
      let wf, planted = W.satisfiable rng in
      let fail_shrunk fails msg =
        Gen.report_minimized ~seed ~what:"workflow" W.pp
          (Gen.shrink_workflow ~fails wf);
        Alcotest.failf "seed %d: %s" seed msg
      in
      if not (W.run wf planted).W.completed then
        fail_shrunk
          (fun wf' ->
            List.length wf'.W.tasks = List.length wf.W.tasks
            && not (W.run wf' planted).W.completed)
          "planted witness does not complete";
      (match Sat.check wf with
      | Sat.Complete w ->
          if not (W.run wf w).W.completed then
            fail_shrunk
              (fun wf' ->
                match Sat.check wf' with
                | Sat.Complete w' -> not (W.run wf' w').W.completed
                | Sat.Impossible _ -> false)
              "checker witness does not replay"
      | Sat.Impossible imp ->
          Alcotest.failf "seed %d: satisfiable family unsat: %s" seed
            (Sat.explain imp));
      let adv = W.generate W.Adversarial rng in
      let verdict mode = Format.asprintf "%a" Sat.pp_verdict (Sat.check ~mode adv) in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: indexed = naive on workflows" seed)
        (verdict Coordinated.System.Indexed)
        (verdict Coordinated.System.Naive))

let test_workflow_unsat_never_completes () =
  let module W = Scenarios.Workflow_family in
  let module Sat = Scenarios.Workflow_sat in
  Gen.each_seed ~salt:7779 ~count:30 (fun ~seed rng ->
      let wf = W.unsatisfiable rng in
      (match Sat.check wf with
      | Sat.Impossible _ -> ()
      | Sat.Complete w ->
          Gen.report_minimized ~seed ~what:"workflow" W.pp
            (Gen.shrink_workflow
               ~fails:(fun wf' ->
                 match Sat.check wf' with
                 | Sat.Complete _ -> true
                 | Sat.Impossible _ -> false)
               wf);
          Alcotest.failf "seed %d: unsatisfiable family completed by %s" seed
            (String.concat "," (List.map (fun (t, p) -> t ^ "=" ^ p) w)));
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: brute force agrees" seed)
        true
        (Sat.brute_force wf = None))

(* 9. The admin-safety adversarial family as a fuzz workload: random
   instances over the full administrative op surface, decided twice —
   symbolically (with pruning) and by explicit sequence enumeration.
   Constructors must agree on every instance, determinism must hold
   (same instance, same outcome rendering), and every symbolic Leak
   must replay through the real system to a grant. *)
let test_admin_adversarial_differential () =
  let module Ad = Analysis.Admin in
  let module AF = Scenarios.Admin_family in
  let tag = function
    | Ad.Leak _ -> "leak"
    | Ad.Safe _ -> "safe"
    | Ad.Undetermined _ -> "undetermined"
  in
  Gen.each_seed ~salt:7780 ~count:60 (fun ~seed rng ->
      let inst = AF.adversarial rng in
      let sym = Ad.check inst in
      let brute = Ad.brute_force inst in
      if not (String.equal (tag sym.Ad.verdict) (tag brute.Ad.verdict)) then
        Alcotest.failf "seed %d: symbolic %a but brute force %a" seed
          Ad.pp_verdict sym.Ad.verdict Ad.pp_verdict brute.Ad.verdict;
      let again = Ad.check inst in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: deterministic outcome" seed)
        (Format.asprintf "%a" Ad.pp_outcome sym)
        (Format.asprintf "%a" Ad.pp_outcome again);
      match sym.Ad.verdict with
      | Ad.Leak { ops; witness } ->
          let trace = List.map fst witness.Analysis.Safety.steps in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: leak replays to a grant" seed)
            true
            (Coordinated.Decision.is_granted
               (Ad.replay_witness inst ops ~trace))
      | Ad.Safe _ | Ad.Undetermined _ -> ())

let () =
  Alcotest.run "fuzz"
    [
      ( "invariants",
        [
          Alcotest.test_case "grants are rbac-sound" `Quick
            test_grants_are_rbac_sound;
          Alcotest.test_case "proofs match audit log" `Quick
            test_proofs_match_audit_log;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "metric consistency" `Quick
            test_metric_consistency;
          Alcotest.test_case "duration budget" `Quick
            test_duration_budget_never_negative;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            (Printf.sprintf "indexed = naive over %d coalitions" diff_runs)
            `Quick test_differential_indexed_vs_naive;
          Alcotest.test_case "cache hits stay faithful" `Quick
            test_differential_repeated_checks;
          Alcotest.test_case
            (Printf.sprintf "lazy = naive (spans too) over %d coalitions"
               diff_runs)
            `Quick test_differential_lazy_vs_naive;
          Alcotest.test_case "warm lazy path stays faithful" `Quick
            test_differential_lazy_repeated_checks;
          Alcotest.test_case "uninstrumented lazy = naive, direct" `Quick
            test_differential_lazy_direct;
        ] );
      ( "workflows",
        [
          Alcotest.test_case "family invariants" `Quick
            test_workflow_family_invariants;
          Alcotest.test_case "unsat family never completes" `Quick
            test_workflow_unsat_never_completes;
        ] );
      ( "admin",
        [
          Alcotest.test_case "adversarial family: symbolic = brute force"
            `Quick test_admin_adversarial_differential;
        ] );
    ]
