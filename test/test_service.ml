(* Tests for the decision service: framing, protocol codec fuzz +
   adversarial inputs, server-core semantics (fail-closed kills,
   overload shedding, event streaming), the sim-vs-direct differential
   gate, lossy-transport determinism, the Unix transport, and the
   normalized CLI exit codes. *)

module Frame = Service.Frame
module Protocol = Service.Protocol
module Server = Service.Server
module Sim_net = Service.Sim_net
module Script = Service.Script
module Net_unix = Service.Net_unix
module Q = Temporal.Q

let user0 = List.hd Parallel.Workload.users
let role0 = List.hd Parallel.Workload.roles

let a_program =
  lazy
    (let rng = Random.State.make [| 0xbeef; 1 |] in
     let scen = Parallel.Workload.scenario ~objects:2 rng in
     (List.hd scen.Parallel.Scenario.objects).Parallel.Scenario.program)

let decode_frames bytes =
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec bytes;
  let rec go acc =
    match Frame.Decoder.next dec with
    | Ok (Some payload) -> go (payload :: acc)
    | Ok None -> List.rev acc
    | Error e -> Alcotest.failf "reply framing: %s" e
  in
  go []

let decode_replies bytes =
  List.map
    (fun payload ->
      match Protocol.decode_reply payload with
      | Ok r -> r
      | Error e -> Alcotest.failf "reply decode: %s" (Protocol.describe e))
    (decode_frames bytes)

let frame_req req = Frame.encode (Protocol.encode_request req)
let feed_req server conn req = decode_replies (Server.feed server ~conn (frame_req req))

(* --- framing --- *)

let test_frame_roundtrip () =
  let payloads = [ ""; "x"; String.make 1000 'q'; "\x00\xff\x01" ] in
  let stream = String.concat "" (List.map Frame.encode payloads) in
  Alcotest.(check (list string)) "all frames recovered" payloads
    (decode_frames stream);
  (* byte-by-byte feeding reassembles across arbitrary splits *)
  let dec = Frame.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame.Decoder.feed dec (String.make 1 c);
      match Frame.Decoder.next dec with
      | Ok (Some p) -> got := p :: !got
      | Ok None -> ()
      | Error e -> Alcotest.failf "unexpected framing error: %s" e)
    stream;
  Alcotest.(check (list string)) "byte-by-byte" payloads (List.rev !got)

let test_frame_oversized_poisons () =
  let dec = Frame.Decoder.create ~max_frame:64 () in
  Frame.Decoder.feed dec "\xff\xff\xff\xff";
  (match Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized length prefix accepted");
  (* poisoned forever, even for later well-formed frames *)
  Frame.Decoder.feed dec (Frame.encode "ok");
  match Frame.Decoder.next dec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "poisoned decoder recovered"

(* --- protocol codec: fuzz round-trip + adversarial inputs --- *)

let gen_bytes rng =
  let len = Random.State.int rng 12 in
  String.init len (fun _ -> Char.chr (Random.State.int rng 256))

let gen_access rng =
  let op =
    match Random.State.int rng 4 with
    | 0 -> Sral.Access.Read
    | 1 -> Sral.Access.Write
    | 2 -> Sral.Access.Execute
    | _ -> Sral.Access.Custom ("op-" ^ string_of_int (Random.State.int rng 100))
  in
  Sral.Access.make ~op ~resource:(gen_bytes rng) ~server:(gen_bytes rng)

let gen_request rng : Protocol.request =
  match Random.State.int rng 8 with
  | 0 -> Ping
  | 1 ->
      Register
        {
          object_id = gen_bytes rng;
          owner = gen_bytes rng;
          roles = List.init (Random.State.int rng 4) (fun _ -> gen_bytes rng);
          program = Lazy.force a_program;
        }
  | 2 -> Arrive { object_id = gen_bytes rng; server = gen_bytes rng }
  | 3 -> Depart { object_id = gen_bytes rng }
  | 4 -> Check { object_id = gen_bytes rng; access = gen_access rng }
  | 5 -> Activate { object_id = gen_bytes rng; role = gen_bytes rng }
  | 6 -> Join { object_id = gen_bytes rng; team = gen_bytes rng }
  | _ -> Subscribe

let gen_verdict rng : Obs.Verdict.t =
  match Random.State.int rng 7 with
  | 0 -> Granted
  | 1 -> Denied (Rbac_denied (gen_bytes rng))
  | 2 ->
      Denied
        (Spatial_violation { binding = gen_bytes rng; detail = gen_bytes rng })
  | 3 ->
      Denied
        (Temporal_expired
           {
             binding = gen_bytes rng;
             spent =
               Q.make (Random.State.int rng 1000) (1 + Random.State.int rng 60);
           })
  | 4 -> Denied (Not_active (gen_bytes rng))
  | 5 -> Denied Not_arrived
  | _ -> Denied (Server_unavailable (gen_bytes rng))

let gen_event rng : Obs.Trace.event =
  let time = Q.make (Random.State.int rng 100) (1 + Random.State.int rng 9) in
  match Random.State.int rng 4 with
  | 0 ->
      Decision
        {
          time;
          object_id = "o1";
          access = Sral.Access.read "r1" ~at:"s1";
          verdict = gen_verdict rng;
        }
  | 1 -> Arrival { time; object_id = "o1"; server = "s2" }
  | 2 -> Aborted { time; agent = "conn-3"; reason = "overload-shed" }
  | _ -> Run_finished { time }

let gen_reply rng : Protocol.reply =
  let seq = Random.State.int rng 0x3FFFFFFF in
  match Random.State.int rng 5 with
  | 0 -> Ack { seq }
  | 1 -> Verdict { seq; verdict = gen_verdict rng }
  | 2 -> Rejected { seq; reason = gen_bytes rng }
  | 3 -> Shed { seq }
  | _ -> Event (gen_event rng)

(* encode → decode → encode is the identity on bytes: the codec has one
   canonical encoding per value and decoding inverts it *)
let roundtrip ~what ~encode ~decode v =
  let bytes = encode v in
  match decode bytes with
  | Error e -> Alcotest.failf "%s: decode failed: %s" what (Protocol.describe e)
  | Ok v' ->
      if not (String.equal (encode v') bytes) then
        Alcotest.failf "%s: re-encode differs" what

let adversarial ~what ~decode bytes =
  (* every proper prefix is rejected, typed — never an exception *)
  for k = 0 to String.length bytes - 1 do
    match decode (String.sub bytes 0 k) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: %d-byte prefix accepted" what k
  done;
  (* version skew *)
  if String.length bytes > 0 then begin
    let skew = Bytes.of_string bytes in
    Bytes.set skew 0 (Char.chr (Protocol.version + 1));
    match decode (Bytes.to_string skew) with
    | Error (Protocol.Bad_version v) ->
        Alcotest.(check int) "skewed version reported" (Protocol.version + 1) v
    | Error e -> Alcotest.failf "%s: skew: wrong error %s" what (Protocol.describe e)
    | Ok _ -> Alcotest.failf "%s: future version accepted" what
  end

let test_protocol_fuzz () =
  Gen.each_seed ~salt:81 ~count:40 (fun ~seed:_ rng ->
      for _ = 1 to 25 do
        let req = gen_request rng in
        roundtrip ~what:"request" ~encode:Protocol.encode_request
          ~decode:Protocol.decode_request req;
        adversarial ~what:"request" ~decode:Protocol.decode_request
          (Protocol.encode_request req);
        let reply = gen_reply rng in
        roundtrip ~what:"reply" ~encode:Protocol.encode_reply
          ~decode:Protocol.decode_reply reply;
        adversarial ~what:"reply" ~decode:Protocol.decode_reply
          (Protocol.encode_reply reply);
        (* arbitrary garbage never raises *)
        (match Protocol.decode_request (gen_bytes rng) with
        | Ok _ | Error _ -> ());
        match Protocol.decode_reply (gen_bytes rng) with
        | Ok _ | Error _ -> ()
      done)

let test_protocol_bad_tag_and_trailing () =
  let ver = String.make 1 (Char.chr Protocol.version) in
  (match Protocol.decode_request (ver ^ "\xfa") with
  | Error (Protocol.Bad_tag 250) -> ()
  | _ -> Alcotest.fail "bad tag not reported");
  match Protocol.decode_request (Protocol.encode_request Ping ^ "junk") with
  | Error (Protocol.Malformed _) -> ()
  | _ -> Alcotest.fail "trailing bytes accepted"

(* --- server core --- *)

let register ?(object_id = "obj") ?(owner = user0) server conn =
  feed_req server conn
    (Register
       {
         object_id;
         owner;
         roles = [ role0 ];
         program = Lazy.force a_program;
       })

let test_server_basic_flow () =
  let server = Server.create ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  (match register server conn with
  | [ Ack { seq = 1 } ] -> ()
  | _ -> Alcotest.fail "register not acked");
  (match feed_req server conn (Arrive { object_id = "obj"; server = "s1" }) with
  | [ Ack { seq = 2 } ] -> ()
  | _ -> Alcotest.fail "arrive not acked");
  (match
     feed_req server conn
       (Check { object_id = "obj"; access = Sral.Access.read "r1" ~at:"s1" })
   with
  | [ Verdict { seq = 3; verdict = _ } ] -> ()
  | _ -> Alcotest.fail "check did not produce a verdict");
  (* unknown object *)
  (match
     feed_req server conn
       (Check { object_id = "ghost"; access = Sral.Access.read "r1" ~at:"s1" })
   with
  | [ Rejected { seq = 4; reason } ] ->
      Alcotest.(check bool) "reason names the object" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "unknown object not rejected");
  (* unknown user is rejected without killing the connection *)
  (match register ~object_id:"obj2" ~owner:"nobody" server conn with
  | [ Rejected _ ] -> ()
  | _ -> Alcotest.fail "unknown user not rejected");
  Alcotest.(check bool) "conn survives domain rejections" true
    (Server.conn_alive server ~conn);
  Alcotest.(check int) "executed" 5 (Server.executed server)

let test_server_depart () =
  let server = Server.create ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  ignore (register server conn);
  (match feed_req server conn (Depart { object_id = "obj" }) with
  | [ Ack _ ] -> ()
  | _ -> Alcotest.fail "depart not acked");
  match
    feed_req server conn
      (Check { object_id = "obj"; access = Sral.Access.read "r1" ~at:"s1" })
  with
  | [ Rejected _ ] -> ()
  | _ -> Alcotest.fail "departed object still served"

let test_server_subscribe_streams_events () =
  let server = Server.create ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  (match feed_req server conn Subscribe with
  | [ Ack { seq = 1 } ] -> ()
  | _ -> Alcotest.fail "subscribe not acked");
  ignore (register server conn);
  ignore (feed_req server conn (Arrive { object_id = "obj"; server = "s1" }));
  let replies =
    feed_req server conn
      (Check { object_id = "obj"; access = Sral.Access.read "r1" ~at:"s1" })
  in
  (* events stream before the verdict that concluded them *)
  (match List.rev replies with
  | Verdict { verdict; _ } :: earlier ->
      let decision_events =
        List.filter_map
          (function
            | Protocol.Event (Obs.Trace.Decision { verdict = v; _ }) -> Some v
            | _ -> None)
          earlier
      in
      (match decision_events with
      | [ v ] ->
          Alcotest.(check bool) "traced verdict matches the reply" true
            (v = verdict)
      | _ -> Alcotest.fail "expected exactly one Decision event")
  | _ -> Alcotest.fail "last reply is not the verdict")

let test_server_malformed_kills () =
  let server = Server.create ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  ignore (register server conn);
  let replies =
    decode_replies (Server.feed server ~conn (Frame.encode "\xff\xff\xff"))
  in
  (match replies with
  | [ Rejected _ ] -> ()
  | _ -> Alcotest.fail "malformed payload not rejected");
  Alcotest.(check bool) "connection killed" false (Server.conn_alive server ~conn);
  Alcotest.(check string) "dead connection ignored" ""
    (Server.feed server ~conn (frame_req Ping));
  Alcotest.(check int) "malformed audited" 1 (Server.malformed server)

let test_server_oversized_frame_kills () =
  let server = Server.create ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  let replies = decode_replies (Server.feed server ~conn "\xff\xff\xff\xff") in
  (match replies with
  | [ Rejected { reason; _ } ] ->
      Alcotest.(check bool) "reason mentions the limit" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "oversized frame not rejected");
  Alcotest.(check bool) "connection killed" false (Server.conn_alive server ~conn)

let test_server_sheds_overload () =
  let config = { Server.default_config with queue_capacity = 2 } in
  let server = Server.create ~config ~base:(Script.base_system ()) () in
  let conn = Server.open_conn server in
  ignore (register server conn);
  ignore (feed_req server conn (Arrive { object_id = "obj"; server = "s1" }));
  let burst =
    String.concat ""
      (List.init 5 (fun _ ->
           frame_req
             (Check { object_id = "obj"; access = Sral.Access.read "r1" ~at:"s1" })))
  in
  let replies = decode_replies (Server.feed server ~conn burst) in
  let verdicts =
    List.length (List.filter (function Protocol.Verdict _ -> true | _ -> false) replies)
  and sheds =
    List.length (List.filter (function Protocol.Shed _ -> true | _ -> false) replies)
  in
  Alcotest.(check int) "capacity executed" 2 verdicts;
  Alcotest.(check int) "rest shed" 3 sheds;
  Alcotest.(check int) "shed counter" 3 (Server.shed server);
  Alcotest.(check bool) "shedding is not fatal" true
    (Server.conn_alive server ~conn)

let test_feed_batch_conforms () =
  let base = Script.base_system () in
  Gen.each_seed ~salt:82 ~count:5 (fun ~seed _rng ->
      let script = Script.generate ~conns:3 ~requests:40 ~seed () in
      let run_with driver =
        let server = Server.create ~base () in
        let ids = Array.init 3 (fun _ -> Server.open_conn server) in
        let outs = Array.make 3 [] in
        driver server ids outs;
        Array.map (fun chunks -> String.concat "" (List.rev chunks)) outs
      in
      let sequential =
        run_with (fun server ids outs ->
            List.iter
              (fun (e : Script.entry) ->
                let out = Server.feed server ~conn:ids.(e.conn) (frame_req e.req) in
                outs.(e.conn) <- out :: outs.(e.conn))
              script)
      in
      let batched =
        run_with (fun server ids outs ->
            let items =
              List.map
                (fun (e : Script.entry) -> (ids.(e.conn), frame_req e.req))
                script
            in
            List.iter
              (fun (conn, out) ->
                let c = ref 0 in
                Array.iteri (fun i id -> if id = conn then c := i) ids;
                outs.(!c) <- out :: outs.(!c))
              (Server.feed_batch server items))
      in
      Array.iteri
        (fun i a ->
          if not (String.equal a batched.(i)) then
            Alcotest.failf "feed_batch diverges on conn %d at seed %d" i seed)
        sequential)

(* --- the differential gate --- *)

let test_differential_gate () =
  let base = Script.base_system () in
  Gen.each_seed ~salt:83 ~count:15 (fun ~seed _rng ->
      let script = Script.generate ~conns:3 ~requests:60 ~seed () in
      let sim = Script.render (Script.run_sim ~base script) in
      let direct = Script.render (Script.drive_direct ~base script) in
      if not (String.equal sim direct) then
        Alcotest.failf "sim and direct drives diverge at seed %d" seed;
      let sim2 = Script.render (Script.run_sim ~base script) in
      if not (String.equal sim sim2) then
        Alcotest.failf "sim replay is not deterministic at seed %d" seed)

let test_lossy_transport_deterministic () =
  let base = Script.base_system () in
  Gen.each_seed ~salt:84 ~count:8 (fun ~seed _rng ->
      let script = Script.generate ~conns:2 ~requests:40 ~seed () in
      let policy = Sim_net.lossy ~seed in
      let a = Script.render (Script.run_sim ~policy ~base script) in
      let b = Script.render (Script.run_sim ~policy ~base script) in
      if not (String.equal a b) then
        Alcotest.failf "lossy run not reproducible at seed %d" seed;
      (* drops may lose requests but never wedge the exchange *)
      let total =
        List.fold_left
          (fun acc (_, rs) -> acc + List.length rs)
          0
          (Script.run_sim ~policy ~base script)
      in
      if total = 0 then Alcotest.failf "lossy run lost everything at seed %d" seed)

(* --- the real transport --- *)

let test_unix_transport () =
  let path = Filename.temp_file "stacc_serve" ".sock" in
  let addr = Net_unix.Unix_path path in
  let listener = Net_unix.listen addr in
  let server = Server.create ~base:(Script.base_system ()) () in
  let finally () = Net_unix.shutdown listener in
  Fun.protect ~finally (fun () ->
      let client = Net_unix.Client.connect addr in
      (* pump until the reply lands; client and server share this thread *)
      let await () =
        let rec go n =
          if n = 0 then Alcotest.fail "no reply from unix transport"
          else begin
            ignore (Net_unix.step listener ~server ~timeout:0.05);
            match Net_unix.Client.drain client with
            | [] -> go (n - 1)
            | replies -> replies
          end
        in
        go 100
      in
      Net_unix.Client.send client Ping;
      (match await () with
      | [ Ack { seq = 1 } ] -> ()
      | _ -> Alcotest.fail "ping not acked over unix socket");
      Net_unix.Client.send client
        (Register
           {
             object_id = "obj";
             owner = user0;
             roles = [ role0 ];
             program = Lazy.force a_program;
           });
      (match await () with
      | [ Ack { seq = 2 } ] -> ()
      | _ -> Alcotest.fail "register not acked over unix socket");
      Net_unix.Client.send client (Arrive { object_id = "obj"; server = "s1" });
      ignore (await ());
      Net_unix.Client.send client
        (Check { object_id = "obj"; access = Sral.Access.read "r1" ~at:"s1" });
      (match await () with
      | [ Verdict { seq = 4; _ } ] -> ()
      | _ -> Alcotest.fail "check not answered over unix socket");
      Net_unix.Client.close client)

(* --- normalized CLI exit codes (PR 8 satellite) --- *)

let stacc args =
  Sys.command (Printf.sprintf "../bin/stacc.exe %s >/dev/null 2>&1" args)

let test_cli_bad_usage_exits_2 () =
  let subcommands =
    [
      "parse"; "traces"; "check"; "dot"; "audit"; "trace"; "chaos"; "workflow";
      "bench-parallel"; "policy"; "lint"; "analyze"; "simulate"; "serve"; "load";
    ]
  in
  List.iter
    (fun sub ->
      let rc = stacc (sub ^ " --definitely-not-a-flag") in
      if rc <> 2 then
        Alcotest.failf "%s: bad flag exited %d, want 2" sub rc)
    subcommands;
  Alcotest.(check int) "unknown subcommand" 2 (stacc "frobnicate");
  Alcotest.(check int) "bad rational deadline" 2
    (stacc "audit --deadline not-a-q ../examples/policies/fig1.policy");
  Alcotest.(check int) "missing file is usage" 2 (stacc "check /no/such/file")

let test_cli_help_exits_0 () =
  Alcotest.(check int) "group help" 0 (stacc "--help");
  Alcotest.(check int) "subcommand help" 0 (stacc "serve --help");
  Alcotest.(check int) "load help" 0 (stacc "load --help")

let () =
  Alcotest.run "service"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip and reassembly" `Quick
            test_frame_roundtrip;
          Alcotest.test_case "oversized prefix poisons" `Quick
            test_frame_oversized_poisons;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "fuzz roundtrip + adversarial" `Quick
            test_protocol_fuzz;
          Alcotest.test_case "bad tag and trailing bytes" `Quick
            test_protocol_bad_tag_and_trailing;
        ] );
      ( "server",
        [
          Alcotest.test_case "basic request flow" `Quick test_server_basic_flow;
          Alcotest.test_case "depart forgets the object" `Quick
            test_server_depart;
          Alcotest.test_case "subscribe streams trace events" `Quick
            test_server_subscribe_streams_events;
          Alcotest.test_case "malformed payload kills fail-closed" `Quick
            test_server_malformed_kills;
          Alcotest.test_case "oversized frame kills fail-closed" `Quick
            test_server_oversized_frame_kills;
          Alcotest.test_case "overload sheds auditable" `Quick
            test_server_sheds_overload;
          Alcotest.test_case "feed_batch = feed" `Quick test_feed_batch_conforms;
        ] );
      ( "differential",
        [
          Alcotest.test_case "sim = direct, byte-identical" `Quick
            test_differential_gate;
          Alcotest.test_case "lossy transport deterministic" `Quick
            test_lossy_transport_deterministic;
        ] );
      ( "transport",
        [ Alcotest.test_case "unix socket smoke" `Quick test_unix_transport ] );
      ( "cli",
        [
          Alcotest.test_case "bad usage exits 2" `Quick
            test_cli_bad_usage_exits_2;
          Alcotest.test_case "help exits 0" `Quick test_cli_help_exits_0;
        ] );
    ]
