(* The observability spine: trace determinism, JSONL round-tripping,
   and — the refactor's safety net — sink equivalence: the audit log,
   the event log and the metrics accumulator, now fed exclusively by
   the trace bus, must report entry-for-entry what the seed's hand-wired
   recording reported.  The reference here is a plain fold over the
   captured trace implementing the seed semantics directly. *)

module Q = Temporal.Q

(* ------------------------------------------------------------------ *)
(* Randomized coalition builder (the fuzz suite's generators, with a
   memory capture subscribed before any event can fire)                *)

let resources = [ "r1"; "r2"; "r3" ]

let random_policy rng =
  let policy = Rbac.Policy.create () in
  List.iter (Rbac.Policy.add_user policy) [ "u1"; "u2" ];
  List.iter (Rbac.Policy.add_role policy) [ "ra"; "rb"; "rc" ];
  let ops = [ "read"; "write"; "execute" ] in
  List.iter
    (fun role ->
      List.iter
        (fun op ->
          if Random.State.bool rng then
            let target =
              match Random.State.int rng 3 with
              | 0 -> "*@*"
              | 1 -> List.nth resources (Random.State.int rng 3) ^ "@*"
              | _ ->
                  List.nth resources (Random.State.int rng 3)
                  ^ "@s"
                  ^ string_of_int (1 + Random.State.int rng 2)
            in
            Rbac.Policy.grant policy role (Rbac.Perm.make ~operation:op ~target))
        ops)
    [ "ra"; "rb"; "rc" ];
  List.iter
    (fun u ->
      List.iter
        (fun r ->
          if Random.State.bool rng then Rbac.Policy.assign_user policy u r)
        [ "ra"; "rb"; "rc" ])
    [ "u1"; "u2" ];
  policy

let random_bindings rng =
  let sel =
    Srac.Selector.Resource (List.nth resources (Random.State.int rng 3))
  in
  List.filteri
    (fun _ _ -> Random.State.bool rng)
    [
      Coordinated.Perm_binding.make
        ~spatial:(Srac.Formula.at_most (1 + Random.State.int rng 4) sel)
        ~spatial_scope:Coordinated.Perm_binding.Performed
        (Rbac.Perm.make ~operation:"*" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (2 + Random.State.int rng 10))
        (Rbac.Perm.make ~operation:"read" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~dur:(Q.of_int (1 + Random.State.int rng 5))
        ~scheme:Temporal.Validity.Per_server
        (Rbac.Perm.make ~operation:"write" ~target:"*@*");
      Coordinated.Perm_binding.make
        ~spatial:
          (Srac.Formula.at_most
             (2 + Random.State.int rng 4)
             (Srac.Selector.Op Sral.Access.Execute))
        ~spatial_scope:Coordinated.Perm_binding.Performed
        ~proof_scope:Coordinated.Perm_binding.Team
        (Rbac.Perm.make ~operation:"execute" ~target:"*@*");
    ]

(* Returns the control, the world and the trace capture; the capture
   sink subscribes right after [System.create] so it observes the whole
   run, spawn-time authentication included. *)
let build_world ?(mode = Coordinated.System.Indexed) rng =
  let policy = random_policy rng in
  let bindings = random_bindings rng in
  let control = Coordinated.System.create ~mode ~bindings policy in
  let capture, trace = Obs.Sink.memory () in
  Obs.Bus.subscribe (Coordinated.System.bus control) capture;
  let world = Naplet.World.create control in
  let servers = [ "s1"; "s2" ] in
  List.iter
    (fun s -> Naplet.World.add_server world (Naplet.Server.create s))
    servers;
  let agents = 1 + Random.State.int rng 4 in
  for i = 1 to agents do
    let owner = if Random.State.bool rng then "u1" else "u2" in
    let program =
      Sral.Generate.program ~allow_io:false ~resources ~servers
        ~size:(4 + Random.State.int rng 8)
        rng
    in
    let team =
      if Random.State.bool rng then Some "crew"
      else if Random.State.bool rng then Some "other"
      else None
    in
    Naplet.World.spawn ?team world
      ~id:(Printf.sprintf "agent%d" i)
      ~owner
      ~roles:[ "ra"; "rb"; "rc" ]
      ~home:"s1" program
  done;
  (control, world, trace)

let each_seed f =
  List.iter
    (fun seed ->
      let rng = Random.State.make [| 7777; seed |] in
      f seed rng)
    (List.init 40 Fun.id)

(* ------------------------------------------------------------------ *)
(* Trace determinism                                                   *)

let test_trace_deterministic () =
  each_seed (fun seed _ ->
      let export () =
        let rng = Random.State.make [| 7777; seed |] in
        let _, world, trace = build_world rng in
        ignore (Naplet.World.run world);
        Obs.Export.to_string (trace ())
      in
      let x1 = export () and x2 = export () in
      Alcotest.(check string)
        (Printf.sprintf "seed %d: byte-identical export" seed)
        x1 x2)

let test_figure1_trace_deterministic () =
  let export () =
    Obs.Export.to_string
      (Scenarios.Integrity_audit.run ()).Scenarios.Integrity_audit.trace
  in
  Alcotest.(check string) "figure-1 export identical" (export ()) (export ())

(* The Figure-1 trace must contain the per-stage decision spans the
   refactor is for — every stage, bracketed, for the same subject. *)
let test_figure1_trace_has_stage_spans () =
  let trace =
    (Scenarios.Integrity_audit.run ()).Scenarios.Integrity_audit.trace
  in
  List.iter
    (fun stage ->
      let starts =
        List.length
          (List.filter
             (function
               | Obs.Trace.Stage_start { stage = s; _ } -> s = stage
               | _ -> false)
             trace)
      and ends =
        List.length
          (List.filter
             (function
               | Obs.Trace.Stage_end { stage = s; _ } -> s = stage
               | _ -> false)
             trace)
      in
      Alcotest.(check bool)
        (Obs.Trace.stage_name stage ^ " spans present")
        true (starts > 0 && starts = ends))
    [ Obs.Trace.Rbac; Obs.Trace.Spatial; Obs.Trace.Temporal ];
  let decisions =
    List.filter
      (function Obs.Trace.Decision _ -> true | _ -> false)
      trace
  in
  Alcotest.(check int) "one decision per module" 11 (List.length decisions)

(* ------------------------------------------------------------------ *)
(* Export round-trip                                                   *)

let test_roundtrip_identity () =
  each_seed (fun seed _ ->
      let rng = Random.State.make [| 7777; seed |] in
      let _, world, trace = build_world rng in
      ignore (Naplet.World.run world);
      let events = trace () in
      let text = Obs.Export.to_string events in
      match Obs.Export.of_string text with
      | Error msg -> Alcotest.failf "seed %d: re-import failed: %s" seed msg
      | Ok events' ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: of_string inverts to_string" seed)
            true
            (List.length events = List.length events'
            && List.for_all2 Obs.Trace.equal events events');
          Alcotest.(check string)
            (Printf.sprintf "seed %d: re-export is a fixed point" seed)
            text
            (Obs.Export.to_string events'))

let test_roundtrip_all_variants () =
  let t = Q.make 3 2 in
  let access = Sral.Access.read "db" ~at:"s1" in
  let events =
    [
      Obs.Trace.Stage_start { time = t; object_id = "o1"; stage = Obs.Trace.Rbac };
      Obs.Trace.Stage_end
        {
          time = t;
          object_id = "o1";
          stage = Obs.Trace.Spatial;
          ok = false;
          elapsed_ns = 123456789L;
        };
      Obs.Trace.Cache_probe { time = t; object_id = "o1"; hit = true };
      Obs.Trace.Decision
        { time = t; object_id = "o1"; access; verdict = Obs.Verdict.Granted };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o\"quoted\\";
          access = Sral.Access.custom "hash" "m" ~at:"s2";
          verdict = Obs.Verdict.Denied (Obs.Verdict.Rbac_denied "no role\nat all");
        };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o1";
          access;
          verdict =
            Obs.Verdict.Denied
              (Obs.Verdict.Temporal_expired { binding = "b1"; spent = Q.make 7 3 });
        };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o1";
          access;
          verdict =
            Obs.Verdict.Denied
              (Obs.Verdict.Spatial_violation { binding = "b2"; detail = "tab\there" });
        };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o1";
          access;
          verdict = Obs.Verdict.Denied (Obs.Verdict.Not_active "b3");
        };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o1";
          access;
          verdict = Obs.Verdict.Denied Obs.Verdict.Not_arrived;
        };
      Obs.Trace.Arrival { time = t; object_id = "o1"; server = "s1" };
      Obs.Trace.Role_rejected
        { time = t; object_id = "o1"; role = "r"; reason = "unicode: é λ" };
      Obs.Trace.Spawned { time = t; agent = "a1"; home = "s1" };
      Obs.Trace.Migrated { time = t; agent = "a1"; from_ = "s1"; to_ = "s2" };
      Obs.Trace.Message_sent { time = t; agent = "a1"; channel = "c" };
      Obs.Trace.Message_received { time = t; agent = "a2"; channel = "c" };
      Obs.Trace.Signal_raised { time = t; agent = "a1"; signal = "x" };
      Obs.Trace.Completed { time = t; agent = "a1" };
      Obs.Trace.Aborted { time = t; agent = "a2"; reason = "why" };
      Obs.Trace.Deadlocked { time = t; agent = "a3" };
      Obs.Trace.Decision
        {
          time = t;
          object_id = "o1";
          access;
          verdict = Obs.Verdict.Denied (Obs.Verdict.Server_unavailable "s1");
        };
      Obs.Trace.Fault_injected
        {
          time = t;
          agent = "a1";
          fault = Obs.Trace.Migration_failure;
          target = "s2";
        };
      Obs.Trace.Fault_injected
        {
          time = t;
          agent = "a2";
          fault = Obs.Trace.Channel_drop;
          target = "c";
        };
      Obs.Trace.Server_down { time = t; server = "s1" };
      Obs.Trace.Server_up { time = t; server = "s1" };
      Obs.Trace.Retry_scheduled
        { time = t; agent = "a1"; attempt = 2; at = Q.make 11 2 };
      Obs.Trace.Gave_up { time = t; agent = "a1"; attempts = 4 };
      Obs.Trace.Policy_changed
        { time = t; op = "assign u1 clerk"; version = 7 };
      Obs.Trace.Run_finished { time = Q.of_int 9 };
    ]
  in
  match Obs.Export.of_string (Obs.Export.to_string events) with
  | Error msg -> Alcotest.failf "re-import failed: %s" msg
  | Ok events' ->
      Alcotest.(check bool)
        "every variant round-trips" true
        (List.length events = List.length events'
        && List.for_all2 Obs.Trace.equal events events')

let test_export_errors () =
  let expect_error what text =
    match Obs.Export.of_string text with
    | Ok _ -> Alcotest.failf "%s: expected an error" what
    | Error msg ->
        Alcotest.(check bool)
          (what ^ ": error mentions a line") true
          (String.length msg > 0)
  in
  expect_error "not json" "nonsense\n";
  expect_error "unknown tag" "{\"ev\":\"warp\",\"t\":\"0\"}\n";
  expect_error "missing field" "{\"ev\":\"spawned\",\"t\":\"0\"}\n";
  expect_error "bad rational" "{\"ev\":\"run_finished\",\"t\":\"x\"}\n";
  (* blank lines are fine *)
  match Obs.Export.of_string "\n\n" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "blank input should parse to no events"
  | Error msg -> Alcotest.failf "blank input rejected: %s" msg

(* [Export.read]: a malformed (here: truncated) line is rejected with
   its line number, not a bare exception. *)
let test_read_truncated_line () =
  let good = Obs.Export.to_line (Obs.Trace.Run_finished { time = Q.of_int 3 }) in
  let truncated = String.sub good 0 (String.length good - 5) in
  let path = Filename.temp_file "stacc_read" ".jsonl" in
  let oc = open_out path in
  output_string oc (good ^ "\n" ^ good ^ "\n" ^ truncated ^ "\n");
  close_out oc;
  let ic = open_in path in
  let result = Obs.Export.read ic in
  close_in ic;
  Sys.remove path;
  (match result with
  | Ok _ -> Alcotest.fail "truncated line should be rejected"
  | Error msg ->
      Alcotest.(check bool)
        "error names the offending line" true
        (String.length msg >= 7 && String.sub msg 0 7 = "line 3:"));
  let path = Filename.temp_file "stacc_read" ".jsonl" in
  let oc = open_out path in
  output_string oc (good ^ "\n\n" ^ good ^ "\n");
  close_out oc;
  let ic = open_in path in
  let result = Obs.Export.read ic in
  close_in ic;
  Sys.remove path;
  match result with
  | Ok [ Obs.Trace.Run_finished _; Obs.Trace.Run_finished _ ] -> ()
  | Ok evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)
  | Error msg -> Alcotest.failf "well-formed file rejected: %s" msg

(* ------------------------------------------------------------------ *)
(* Sink equivalence: bus-fed stores = reference fold over the trace    *)

let reason_bucket = function
  | Obs.Verdict.Rbac_denied _ -> `Rbac
  | Obs.Verdict.Spatial_violation _ -> `Spatial
  | Obs.Verdict.Temporal_expired _ | Obs.Verdict.Not_active _
  | Obs.Verdict.Not_arrived ->
      `Temporal
  | Obs.Verdict.Server_unavailable _ -> `Unavailable

let test_sink_equivalence () =
  each_seed (fun seed rng ->
      let control, world, trace = build_world rng in
      let metrics = Naplet.World.run world in
      let events = trace () in
      (* audit log = the Decision events, entry for entry *)
      let decisions =
        List.filter_map
          (function
            | Obs.Trace.Decision { time; object_id; access; verdict } ->
                Some { Coordinated.Audit_log.time; object_id; access; verdict }
            | _ -> None)
          events
      in
      let entries = Coordinated.Audit_log.entries (Coordinated.System.log control) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: audit log = trace decisions" seed)
        true
        (List.length decisions = List.length entries
        && List.for_all2 ( = ) decisions entries);
      (* metrics = a counting fold over the trace *)
      let count p = List.length (List.filter p events) in
      let granted =
        count (function
          | Obs.Trace.Decision { verdict = Obs.Verdict.Granted; _ } -> true
          | _ -> false)
      and denied_with bucket =
        count (function
          | Obs.Trace.Decision { verdict = Obs.Verdict.Denied r; _ } ->
              reason_bucket r = bucket
          | _ -> false)
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: granted" seed)
        granted metrics.Naplet.Metrics.granted;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: denied rbac" seed)
        (denied_with `Rbac) metrics.Naplet.Metrics.denied_rbac;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: denied spatial" seed)
        (denied_with `Spatial) metrics.Naplet.Metrics.denied_spatial;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: denied temporal" seed)
        (denied_with `Temporal) metrics.Naplet.Metrics.denied_temporal;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: migrations" seed)
        (count (function Obs.Trace.Migrated _ -> true | _ -> false))
        metrics.Naplet.Metrics.migrations;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: messages" seed)
        (count (function Obs.Trace.Message_sent _ -> true | _ -> false))
        metrics.Naplet.Metrics.messages;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: signals" seed)
        (count (function Obs.Trace.Signal_raised _ -> true | _ -> false))
        metrics.Naplet.Metrics.signals;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: completed" seed)
        (count (function Obs.Trace.Completed _ -> true | _ -> false))
        metrics.Naplet.Metrics.completed_agents;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: aborted" seed)
        (count (function Obs.Trace.Aborted _ -> true | _ -> false))
        metrics.Naplet.Metrics.aborted_agents;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: deadlocked" seed)
        (count (function Obs.Trace.Deadlocked _ -> true | _ -> false))
        metrics.Naplet.Metrics.deadlocked_agents;
      (* event log = the agent-lifecycle projection of the trace *)
      let projected =
        List.filter_map
          (function
            | Obs.Trace.Spawned { time; agent; home } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Spawned { home } }
            | Obs.Trace.Migrated { time; agent; from_; to_ } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Migrated { from_; to_ } }
            | Obs.Trace.Decision { time; object_id; access; verdict } ->
                let kind =
                  match verdict with
                  | Obs.Verdict.Granted -> Naplet.Event_log.Access_granted access
                  | Obs.Verdict.Denied reason ->
                      Naplet.Event_log.Access_denied
                        ( access,
                          Format.asprintf "%a" Obs.Verdict.pp_reason reason )
                in
                Some { Naplet.Event_log.time; agent = object_id; kind }
            | Obs.Trace.Message_sent { time; agent; channel } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Message_sent channel }
            | Obs.Trace.Message_received { time; agent; channel } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Message_received channel }
            | Obs.Trace.Signal_raised { time; agent; signal } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Signal_raised signal }
            | Obs.Trace.Completed { time; agent } ->
                Some
                  { Naplet.Event_log.time; agent; kind = Naplet.Event_log.Completed }
            | Obs.Trace.Aborted { time; agent; reason } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Aborted reason }
            | Obs.Trace.Deadlocked { time; agent } ->
                Some
                  { Naplet.Event_log.time; agent;
                    kind = Naplet.Event_log.Deadlocked }
            | _ -> None)
          events
      in
      let logged = Naplet.Event_log.events (Naplet.World.events world) in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: event log = trace projection" seed)
        true
        (List.length projected = List.length logged
        && List.for_all2 ( = ) projected logged))

(* Decisions must not depend on the decision mode: the naive and the
   indexed runs of the same coalition publish the same Decision events
   (spans and cache probes legitimately differ — the fast path skips
   work).                                                              *)
let test_decisions_mode_independent () =
  each_seed (fun seed _ ->
      let decisions mode =
        let rng = Random.State.make [| 7777; seed |] in
        let _, world, trace = build_world ~mode rng in
        ignore (Naplet.World.run world);
        List.filter
          (function Obs.Trace.Decision _ -> true | _ -> false)
          (trace ())
      in
      let fast = decisions Coordinated.System.Indexed
      and naive = decisions Coordinated.System.Naive in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: decision events mode-independent" seed)
        true
        (List.length fast = List.length naive
        && List.for_all2 Obs.Trace.equal fast naive))

(* ------------------------------------------------------------------ *)
(* Satellites: event-log accessors, metrics grant rate, stats          *)

let test_event_log_accessors () =
  each_seed (fun seed rng ->
      let _, world, _ = build_world rng in
      ignore (Naplet.World.run world);
      let log = Naplet.World.events world in
      let events = Naplet.Event_log.events log in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: size = length" seed)
        (List.length events)
        (Naplet.Event_log.size log);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: count true = size" seed)
        (Naplet.Event_log.size log)
        (Naplet.Event_log.count log (fun _ -> true));
      List.iter
        (fun (agent : Naplet.Agent.t) ->
          let id = agent.Naplet.Agent.id in
          let expected =
            List.filter
              (fun (e : Naplet.Event_log.event) ->
                String.equal e.Naplet.Event_log.agent id)
              events
          in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: for_agent %s chronological" seed id)
            true
            (expected = Naplet.Event_log.for_agent log id))
        (Naplet.World.agents world))

let test_grant_rate_option () =
  let m = Naplet.Metrics.create () in
  Alcotest.(check bool)
    "no accesses -> no rate" true
    (Naplet.Metrics.grant_rate m = None);
  let rendered = Format.asprintf "%a" Naplet.Metrics.pp m in
  Alcotest.(check bool)
    "pp prints n/a" true
    (let re = "n/a" in
     let rec contains i =
       i + String.length re <= String.length rendered
       && (String.equal (String.sub rendered i (String.length re)) re
          || contains (i + 1))
     in
     contains 0);
  m.Naplet.Metrics.granted <- 3;
  m.Naplet.Metrics.denied <- 1;
  Alcotest.(check bool)
    "3/4 granted" true
    (Naplet.Metrics.grant_rate m = Some 0.75)

let test_stats_counters () =
  let t = Q.zero in
  let stats = Obs.Stats.create () in
  let feed = Obs.Sink.handle (Obs.Stats.sink stats) in
  let span stage ns ok =
    feed (Obs.Trace.Stage_start { time = t; object_id = "o"; stage });
    feed
      (Obs.Trace.Stage_end
         { time = t; object_id = "o"; stage; ok; elapsed_ns = ns })
  in
  span Obs.Trace.Rbac 100L true;
  span Obs.Trace.Rbac 300L true;
  span Obs.Trace.Spatial 1000L false;
  span Obs.Trace.Temporal 10L true;
  feed (Obs.Trace.Cache_probe { time = t; object_id = "o"; hit = true });
  feed (Obs.Trace.Cache_probe { time = t; object_id = "o"; hit = false });
  feed
    (Obs.Trace.Decision
       {
         time = t;
         object_id = "o";
         access = Sral.Access.read "r" ~at:"s";
         verdict = Obs.Verdict.Granted;
       });
  feed
    (Obs.Trace.Decision
       {
         time = t;
         object_id = "o";
         access = Sral.Access.read "r" ~at:"s";
         verdict = Obs.Verdict.Denied Obs.Verdict.Not_arrived;
       });
  Alcotest.(check int) "decisions" 2 (Obs.Stats.decisions stats);
  Alcotest.(check int) "granted" 1 (Obs.Stats.granted stats);
  Alcotest.(check int) "denied" 1 (Obs.Stats.denied stats);
  Alcotest.(check int) "cache hits" 1 (Obs.Stats.cache_hits stats);
  Alcotest.(check int) "cache misses" 1 (Obs.Stats.cache_misses stats);
  Alcotest.(check int) "stage failures" 1 (Obs.Stats.stage_failures stats);
  Alcotest.(check int) "rbac spans" 2 (Obs.Stats.stage_count stats Obs.Trace.Rbac);
  let h = Obs.Stats.stage_histogram stats Obs.Trace.Rbac in
  Alcotest.(check int) "hist count" 2 (Obs.Stats.hist_count h);
  Alcotest.(check (float 0.001)) "hist mean" 200.0 (Obs.Stats.hist_mean_ns h);
  Alcotest.(check bool) "hist max" true (Obs.Stats.hist_max_ns h = 300L);
  Alcotest.(check bool)
    "p100 upper bound covers max" true
    (Obs.Stats.hist_percentile_ns h 1.0 >= 300.0)

(* --- byte offsets on malformed input (PR 8 satellite) --- *)

(* The error pinpoints the absolute byte offset of the offending input,
   not just its line. *)
let test_read_byte_offset () =
  let good = Obs.Export.to_line (Obs.Trace.Run_finished { time = Q.of_int 3 }) in
  let bad = "{\"a\":}" in
  (* the parse fails on the '}' where a value was expected: offset 5
     within the line, rebased past [good] and its newline *)
  let expected = Printf.sprintf "line 2: byte %d:" (String.length good + 1 + 5) in
  let check_result what = function
    | Ok _ -> Alcotest.failf "%s: malformed input accepted" what
    | Error msg ->
        if
          String.length msg < String.length expected
          || String.sub msg 0 (String.length expected) <> expected
        then
          Alcotest.failf "%s: expected error starting %S, got %S" what expected
            msg
  in
  let doc = good ^ "\n" ^ bad ^ "\n" in
  check_result "of_string" (Obs.Export.of_string doc);
  let path = Filename.temp_file "stacc_offset" ".jsonl" in
  let oc = open_out path in
  output_string oc doc;
  close_out oc;
  let ic = open_in path in
  let result = Obs.Export.read ic in
  close_in ic;
  Sys.remove path;
  check_result "read" result

(* A structurally valid JSON value followed by a garbage tail is
   rejected at the tail's offset. *)
let test_garbage_tail_offset () =
  match Obs.Export.of_line "{}xyz" with
  | Ok _ -> Alcotest.fail "garbage tail accepted"
  | Error msg ->
      Alcotest.(check string) "tail offset" "byte 2: trailing input" msg

let test_truncated_frame_offset () =
  let good = Obs.Export.to_line (Obs.Trace.Run_finished { time = Q.of_int 3 }) in
  (* cut inside the line: the unterminated string/object is reported at
     the byte where the parser ran out *)
  let truncated = String.sub good 0 (String.length good - 3) in
  match Obs.Export.of_line truncated with
  | Ok _ -> Alcotest.fail "truncated line accepted"
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error carries a byte offset: %S" msg)
        true
        (String.length msg > 5 && String.sub msg 0 5 = "byte ")

(* --- Stats.percentile: exact small-sample fallback (PR 8 satellite) --- *)

let test_percentile_exact_small () =
  let h = Obs.Stats.histogram () in
  List.iter
    (fun v -> Obs.Stats.observe h (Int64.of_int v))
    [ 700; 100; 1000; 300; 500; 900; 200; 800; 400; 600 ];
  Alcotest.(check (float 0.)) "p50 exact" 500.0 (Obs.Stats.percentile h 0.50);
  Alcotest.(check (float 0.)) "p95 exact" 1000.0 (Obs.Stats.percentile h 0.95);
  Alcotest.(check (float 0.)) "p99 exact" 1000.0 (Obs.Stats.percentile h 0.99);
  Alcotest.(check (float 0.)) "p10 exact" 100.0 (Obs.Stats.percentile h 0.10);
  Alcotest.(check (float 0.)) "empty" 0.0
    (Obs.Stats.percentile (Obs.Stats.histogram ()) 0.5)

let test_percentile_bucket_fallback () =
  let h = Obs.Stats.histogram () in
  for _ = 1 to 600 do
    Obs.Stats.observe h 100L
  done;
  (* beyond the raw-sample buffer only the log2 bucket bound remains:
     100 lands in bucket 6, whose upper bound is 2^7 - 1 *)
  Alcotest.(check (float 0.)) "falls back to bucket bound" 127.0
    (Obs.Stats.percentile h 0.50);
  Alcotest.(check (float 0.))
    "matches hist_percentile_ns"
    (Obs.Stats.hist_percentile_ns h 0.50)
    (Obs.Stats.percentile h 0.50)

let test_percentile_merge () =
  (* merge through the public path: two accumulators built from
     Stage_end spans, folded with [Stats.add] *)
  let mk_stats n base =
    Obs.Stats.of_trace
      (List.init n (fun i ->
           Obs.Trace.Stage_end
             {
               time = Q.zero;
               object_id = "o";
               stage = Obs.Trace.Rbac;
               ok = true;
               elapsed_ns = Int64.of_int ((base + i) * 10);
             }))
  in
  let a = mk_stats 200 1 (* 10..2000 *) and b = mk_stats 200 201 (* 2010..4000 *) in
  Obs.Stats.add a b;
  let h = Obs.Stats.stage_histogram a Obs.Trace.Rbac in
  Alcotest.(check (float 0.)) "400 merged samples stay exact" 2000.0
    (Obs.Stats.percentile h 0.50);
  (* merging past the 512-sample buffer degrades to bucket bounds *)
  let c = mk_stats 400 1 and d = mk_stats 400 1 in
  Obs.Stats.add c d;
  let h = Obs.Stats.stage_histogram c Obs.Trace.Rbac in
  Alcotest.(check (float 0.))
    "800 merged samples fall back to the bucket bound"
    (Obs.Stats.hist_percentile_ns h 0.50)
    (Obs.Stats.percentile h 0.50)

let () =
  Alcotest.run "obs"
    [
      ( "determinism",
        [
          Alcotest.test_case "identical runs, identical JSONL" `Quick
            test_trace_deterministic;
          Alcotest.test_case "figure-1 trace deterministic" `Quick
            test_figure1_trace_deterministic;
          Alcotest.test_case "figure-1 trace has stage spans" `Quick
            test_figure1_trace_has_stage_spans;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "export/import fixed point" `Quick
            test_roundtrip_identity;
          Alcotest.test_case "all event variants" `Quick
            test_roundtrip_all_variants;
          Alcotest.test_case "malformed input rejected" `Quick
            test_export_errors;
          Alcotest.test_case "read reports the offending line" `Quick
            test_read_truncated_line;
          Alcotest.test_case "errors carry absolute byte offsets" `Quick
            test_read_byte_offset;
          Alcotest.test_case "garbage tail offset" `Quick
            test_garbage_tail_offset;
          Alcotest.test_case "truncated frame offset" `Quick
            test_truncated_frame_offset;
        ] );
      ( "percentiles",
        [
          Alcotest.test_case "exact below the sample cap" `Quick
            test_percentile_exact_small;
          Alcotest.test_case "bucket fallback beyond the cap" `Quick
            test_percentile_bucket_fallback;
          Alcotest.test_case "merged histograms stay exact" `Quick
            test_percentile_merge;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "stores = reference fold over trace" `Quick
            test_sink_equivalence;
          Alcotest.test_case "decisions mode-independent" `Quick
            test_decisions_mode_independent;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "event-log accessors" `Quick
            test_event_log_accessors;
          Alcotest.test_case "grant rate is optional" `Quick
            test_grant_rate_option;
          Alcotest.test_case "stats counters" `Quick test_stats_counters;
        ] );
    ]
