(* SHA-1 against the FIPS 180-1 test vectors plus structural checks. *)

let vectors =
  [
    ("abc", "a9993e364706816aba3e25717850c26c9cd0d89d");
    ("", "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1" );
    ("The quick brown fox jumps over the lazy dog",
     "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
    ("The quick brown fox jumps over the lazy cog",
     "de9f2c7fd25e1b3afad3e85a0bd17d9b100db4b3");
  ]

let test_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "sha1(%S)" input)
        expected
        (Crypto.Sha1.hex_of_string input))
    vectors

let test_million_a () =
  (* FIPS vector: one million 'a's *)
  let s = String.make 1_000_000 'a' in
  Alcotest.(check string) "10^6 x a"
    "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Crypto.Sha1.hex_of_string s)

let test_block_boundaries () =
  (* padding edge cases: lengths 55, 56, 63, 64, 65 around the block
     size trigger the one- vs two-block padding paths *)
  let known =
    [
      (55, "c1c8bbdc22796e28c0e15163d20899b65621d65a");
      (56, "c2db330f6083854c99d4b5bfb6e8f29f201be699");
      (63, "03f09f5b158a7a8cdad920bddc29b81c18a551f5");
      (64, "0098ba824b5c16427bd7a1122a5a442a25ec644d");
      (65, "11655326c708d70319be2610e8a57d9a5b959d3b");
    ]
  in
  List.iter
    (fun (n, expected) ->
      Alcotest.(check string)
        (Printf.sprintf "len %d" n)
        expected
        (Crypto.Sha1.hex_of_string (String.make n 'a')))
    known

let test_digest_forms () =
  let d = Crypto.Sha1.digest_string "abc" in
  Alcotest.(check int) "raw length" 20 (String.length (Crypto.Sha1.to_raw d));
  Alcotest.(check int) "hex length" 40 (String.length (Crypto.Sha1.to_hex d));
  Alcotest.(check bool) "bytes = string" true
    (Crypto.Sha1.equal d (Crypto.Sha1.digest_bytes (Bytes.of_string "abc")));
  Alcotest.(check bool) "different input different digest" false
    (Crypto.Sha1.equal d (Crypto.Sha1.digest_string "abd"))

let avalanche =
  QCheck.Test.make ~name:"distinct strings give distinct digests" ~count:200
    QCheck.(pair string string)
    (fun (s1, s2) ->
      s1 = s2
      || not
           (Crypto.Sha1.equal
              (Crypto.Sha1.digest_string s1)
              (Crypto.Sha1.digest_string s2)))

let () =
  Alcotest.run "crypto"
    [
      ( "sha1",
        [
          Alcotest.test_case "fips vectors" `Quick test_vectors;
          Alcotest.test_case "million a" `Slow test_million_a;
          Alcotest.test_case "block boundaries" `Quick test_block_boundaries;
          Alcotest.test_case "digest forms" `Quick test_digest_forms;
          QCheck_alcotest.to_alcotest avalanche;
        ] );
    ]
