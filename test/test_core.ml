(* Tests for the coordinated model: permission bindings, the monitor,
   the Eq. 3.1 + Eq. 4.1 decision, the audit log, the policy language
   and the facade. *)

open Coordinated
module Q = Temporal.Q

let q = Q.of_int
let read_ r s = Sral.Access.read r ~at:s
let a_db = read_ "db" "s1"
let a_cfg = read_ "cfg" "s1"
let prog = Sral.Parser.program

let base_policy () =
  let policy = Rbac.Policy.create () in
  Rbac.Policy.add_user policy "u";
  Rbac.Policy.add_role policy "r";
  Rbac.Policy.assign_user policy "u" "r";
  Rbac.Policy.grant policy "r" (Rbac.Perm.make ~operation:"read" ~target:"*@*");
  policy

let session_of control =
  let s = System.new_session control ~user:"u" in
  Rbac.Session.activate s "r";
  s

(* --- perm bindings --- *)

let test_binding_applies () =
  let b = Perm_binding.make (Rbac.Perm.make ~operation:"read" ~target:"db@s1") in
  Alcotest.(check bool) "exact" true (Perm_binding.applies_to b a_db);
  Alcotest.(check bool) "other resource" false
    (Perm_binding.applies_to b a_cfg);
  let wild = Perm_binding.make (Rbac.Perm.make ~operation:"*" ~target:"*@s1") in
  Alcotest.(check bool) "wildcard" true (Perm_binding.applies_to wild a_cfg)

(* --- monitor --- *)

let test_monitor_arrivals_and_proofs () =
  let m = Monitor.create ~object_id:"o" in
  Alcotest.(check (option string)) "nowhere yet" None (Monitor.current_server m);
  Monitor.record_arrival m ~server:"s1" ~time:Q.zero;
  Monitor.record_arrival m ~server:"s2" ~time:(q 5);
  Alcotest.(check (option string)) "current" (Some "s2")
    (Monitor.current_server m);
  Alcotest.(check int) "arrival count" 2 (List.length (Monitor.arrivals m));
  Monitor.record_access m a_db ~time:(q 6);
  Alcotest.(check bool) "proof issued" true
    (Srac.Proof.holds (Monitor.proofs m) a_db);
  Alcotest.(check int) "performed" 1 (Sral.Trace.length (Monitor.performed m))

let test_monitor_clock_monotone () =
  let m = Monitor.create ~object_id:"o" in
  Monitor.record_arrival m ~server:"s1" ~time:(q 5);
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Monitor: time went backwards (3 < 5)") (fun () ->
      Monitor.record_access m a_db ~time:(q 3))

let test_monitor_activation_fn () =
  let m = Monitor.create ~object_id:"o" in
  Monitor.set_active m ~key:"k" ~time:(q 1) true;
  Monitor.set_active m ~key:"k" ~time:(q 3) true (* no-op *);
  Monitor.set_active m ~key:"k" ~time:(q 5) false;
  let f = Monitor.activation_fn m ~key:"k" in
  Alcotest.(check bool) "before" false (Temporal.Step_fn.value_at f Q.zero);
  Alcotest.(check bool) "during" true (Temporal.Step_fn.value_at f (q 2));
  Alcotest.(check bool) "after" false (Temporal.Step_fn.value_at f (q 7));
  Alcotest.(check bool) "unknown key inactive" false
    (Monitor.is_active_at m ~key:"zz" (q 2))

(* --- decisions --- *)

let setup ?(bindings = []) () =
  let control = System.create ~bindings (base_policy ()) in
  let session = session_of control in
  System.arrive control ~object_id:"o" ~server:"s1" ~time:Q.zero;
  (control, session)

let test_decide_plain_rbac () =
  let control, session = setup () in
  let v =
    System.check control ~session ~object_id:"o" ~program:(prog "read db @ s1")
      ~time:(q 1) a_db
  in
  Alcotest.(check bool) "granted" true (Decision.is_granted v);
  (* unauthorized operation *)
  let v2 =
    System.check control ~session ~object_id:"o" ~program:(prog "write db @ s1")
      ~time:(q 2)
      (Sral.Access.write "db" ~at:"s1")
  in
  (match v2 with
  | Decision.Denied (Decision.Rbac_denied _) -> ()
  | _ -> Alcotest.fail "expected rbac denial")

let test_decide_spatial_program_scope () =
  (* reading db requires that cfg is read first on some execution *)
  let c = Srac.Formula.Ordered (a_cfg, a_db) in
  let binding =
    Perm_binding.make ~spatial:c
      ~spatial_modality:Srac.Program_sat.Exists
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let good = prog "read cfg @ s1; read db @ s1" in
  let bad = prog "read db @ s1" in
  Alcotest.(check bool) "feasible program" true
    (Decision.is_granted
       (System.check control ~session ~object_id:"o" ~program:good ~time:(q 1)
          a_db));
  match
    System.check control ~session ~object_id:"o" ~program:bad ~time:(q 2) a_db
  with
  | Decision.Denied (Decision.Spatial_violation _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected spatial denial, got %a" Decision.pp_verdict v)

let test_decide_spatial_performed_scope () =
  (* at most 2 db reads, judged on history *)
  let c = Srac.Formula.at_most 2 (Srac.Selector.Resource "db") in
  let binding =
    Perm_binding.make ~spatial:c ~spatial_scope:Perm_binding.Performed
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1; read db @ s1; read db @ s1" in
  let decide t =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "1st" true (Decision.is_granted (decide 1));
  Alcotest.(check bool) "2nd" true (Decision.is_granted (decide 2));
  (match decide 3 with
  | Decision.Denied (Decision.Spatial_violation _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "3rd should violate history: %a" Decision.pp_verdict v));
  (* and it stays denied *)
  Alcotest.(check bool) "4th still denied" false
    (Decision.is_granted (decide 4))

let test_decide_temporal_expiry () =
  let binding =
    Perm_binding.make ~dur:(q 5) ~scheme:Temporal.Validity.Whole_journey
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1" in
  (* activation starts at the first decision (t=0 arrival refresh is
     not automatic here; the first check activates) *)
  let decide t =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "fresh" true (Decision.is_granted (decide 0));
  Alcotest.(check bool) "within budget" true (Decision.is_granted (decide 4));
  match decide 6 with
  | Decision.Denied (Decision.Temporal_expired { spent; _ }) ->
      Alcotest.(check string) "spent equals dur" "5" (Q.to_string spent)
  | v ->
      Alcotest.fail
        (Format.asprintf "expected expiry, got %a" Decision.pp_verdict v)

let test_decide_per_server_scheme () =
  let binding =
    Perm_binding.make ~dur:(q 5) ~scheme:Temporal.Validity.Per_server
      (Rbac.Perm.make ~operation:"read" ~target:"*@*")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1; read db @ s2" in
  let decide t a =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a
  in
  Alcotest.(check bool) "t=0 s1" true (Decision.is_granted (decide 0 a_db));
  Alcotest.(check bool) "t=6 s1 expired" false
    (Decision.is_granted (decide 6 a_db));
  (* migrate: the per-server budget resets *)
  System.arrive control ~object_id:"o" ~server:"s2" ~time:(q 7);
  let a_db2 = read_ "db" "s2" in
  Alcotest.(check bool) "t=8 s2 fresh" true
    (Decision.is_granted (decide 8 a_db2))

let test_decide_not_arrived () =
  let binding =
    Perm_binding.make ~dur:(q 5)
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control = System.create ~bindings:[ binding ] (base_policy ()) in
  let session = session_of control in
  (* no System.arrive *)
  match
    System.check control ~session ~object_id:"ghost"
      ~program:(prog "read db @ s1") ~time:(q 1) a_db
  with
  | Decision.Denied Decision.Not_arrived -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected Not_arrived, got %a" Decision.pp_verdict v)

let test_granted_records_proof () =
  let control, session = setup () in
  ignore
    (System.check control ~session ~object_id:"o"
       ~program:(prog "read db @ s1") ~time:(q 1) a_db);
  let m = System.monitor control ~object_id:"o" in
  Alcotest.(check bool) "proof recorded" true
    (Srac.Proof.holds (Monitor.proofs m) a_db);
  Alcotest.(check int) "log size" 1 (Audit_log.size (System.log control))

let test_denied_no_proof () =
  let c = Srac.Formula.at_most 0 (Srac.Selector.Resource "db") in
  let binding =
    Perm_binding.make ~spatial:c ~spatial_scope:Perm_binding.Performed
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  ignore
    (System.check control ~session ~object_id:"o"
       ~program:(prog "read db @ s1") ~time:(q 1) a_db);
  let m = System.monitor control ~object_id:"o" in
  Alcotest.(check bool) "no proof for denied access" false
    (Srac.Proof.holds (Monitor.proofs m) a_db)

let test_dc_cross_validation () =
  (* the DC route of Theorem 4.1 agrees with the step-function route *)
  let binding =
    Perm_binding.make ~dur:(q 5)
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1" in
  List.iter
    (fun t ->
      let verdict =
        System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
      in
      let m = System.monitor control ~object_id:"o" in
      let dc = Decision.validity_dc_check ~monitor:m ~binding ~time:(q t) in
      (* Granted implies DC-valid; Temporal_expired implies not *)
      match verdict with
      | Decision.Granted ->
          Alcotest.(check bool)
            (Printf.sprintf "dc agrees at %d (granted)" t)
            true dc
      | Decision.Denied (Decision.Temporal_expired _) ->
          Alcotest.(check bool)
            (Printf.sprintf "dc agrees at %d (expired)" t)
            false dc
      | Decision.Denied _ -> ())
    [ 0; 1; 3; 4; 6; 8 ]

(* --- aggregation (the paper's future work) --- *)

let perm_db = Rbac.Perm.make ~operation:"read" ~target:"db@s1"
let perm_cfg = Rbac.Perm.make ~operation:"read" ~target:"cfg@s1"

let test_classify () =
  let bindings =
    [
      Perm_binding.make perm_db;
      Perm_binding.make perm_cfg;
      Perm_binding.make ~dur:(q 5) perm_db;
    ]
  in
  let groups = Aggregate.classify bindings in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let db_group =
    List.find (fun g -> Rbac.Perm.equal g.Aggregate.perm perm_db) groups
  in
  Alcotest.(check int) "db group size" 2 (List.length db_group.Aggregate.members)

let test_aggregate_min_dur () =
  let bindings =
    [
      Perm_binding.make ~dur:(q 10) perm_db;
      Perm_binding.make ~dur:(q 4) perm_db;
      Perm_binding.make perm_db (* infinite *);
    ]
  in
  match Aggregate.aggregate bindings with
  | [ merged ] ->
      Alcotest.(check (option string)) "min duration" (Some "4")
        (Option.map Q.to_string merged.Perm_binding.dur)
  | other -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length other))

let test_aggregate_conjoins_history_constraints () =
  let c1 = Srac.Formula.at_most 5 (Srac.Selector.Resource "db") in
  let c2 = Srac.Formula.Atom a_cfg in
  let bindings =
    [
      Perm_binding.make ~spatial:c1 ~spatial_scope:Perm_binding.Performed perm_db;
      Perm_binding.make ~spatial:c2 ~spatial_scope:Perm_binding.Performed perm_db;
    ]
  in
  match Aggregate.aggregate bindings with
  | [ merged ] -> (
      match merged.Perm_binding.spatial with
      | Some (Srac.Formula.And _) -> ()
      | Some other ->
          Alcotest.fail
            (Format.asprintf "expected conjunction, got %a" Srac.Formula.pp
               other)
      | None -> Alcotest.fail "spatial lost")
  | other -> Alcotest.fail (Printf.sprintf "expected 1, got %d" (List.length other))

let test_aggregate_refuses_exists_program () =
  (* ∃-modality program-scope constraints must not merge *)
  let c1 = Srac.Formula.Atom a_db in
  let c2 = Srac.Formula.Atom a_cfg in
  let bindings =
    [
      Perm_binding.make ~spatial:c1 ~spatial_modality:Srac.Program_sat.Exists
        perm_db;
      Perm_binding.make ~spatial:c2 ~spatial_modality:Srac.Program_sat.Exists
        perm_db;
    ]
  in
  Alcotest.(check int) "kept apart" 2
    (List.length (Aggregate.aggregate bindings))

let test_aggregate_refuses_mixed_proof_scopes () =
  let c = Srac.Formula.at_most 2 (Srac.Selector.Resource "db") in
  let bindings =
    [
      Perm_binding.make ~spatial:c ~spatial_scope:Perm_binding.Performed
        ~proof_scope:Perm_binding.Own perm_db;
      Perm_binding.make ~spatial:c ~spatial_scope:Perm_binding.Performed
        ~proof_scope:Perm_binding.Team perm_db;
    ]
  in
  Alcotest.(check int) "kept apart" 2
    (List.length (Aggregate.aggregate bindings))

let test_aggregate_refuses_mixed_schemes () =
  let bindings =
    [
      Perm_binding.make ~dur:(q 5) ~scheme:Temporal.Validity.Whole_journey
        perm_db;
      Perm_binding.make ~dur:(q 5) ~scheme:Temporal.Validity.Per_server perm_db;
    ]
  in
  Alcotest.(check int) "kept apart" 2
    (List.length (Aggregate.aggregate bindings))

let aggregate_preserves_decisions =
  QCheck.Test.make
    ~name:"aggregated bindings decide like the originals" ~count:60
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      (* random bindings on perm_db: Forall program constraints,
         history counts, durations with one scheme *)
      let mk_binding () =
        match Random.State.int rng 3 with
        | 0 ->
            Perm_binding.make
              ~spatial:(Srac.Formula.Atom a_cfg)
              ~spatial_modality:Srac.Program_sat.Forall perm_db
        | 1 ->
            Perm_binding.make
              ~spatial:
                (Srac.Formula.at_most
                   (1 + Random.State.int rng 3)
                   (Srac.Selector.Resource "db"))
              ~spatial_scope:Perm_binding.Performed perm_db
        | _ -> Perm_binding.make ~dur:(q (2 + Random.State.int rng 6)) perm_db
      in
      let bindings = List.init (2 + Random.State.int rng 3) (fun _ -> mk_binding ()) in
      let aggregated = Aggregate.aggregate bindings in
      let run bindings =
        let control = System.create ~bindings (base_policy ()) in
        let session = session_of control in
        System.arrive control ~object_id:"o" ~server:"s1" ~time:Q.zero;
        let program = prog "read cfg @ s1; read db @ s1; read db @ s1; read db @ s1" in
        List.map
          (fun t ->
            Decision.is_granted
              (System.check control ~session ~object_id:"o" ~program
                 ~time:(q t) a_db))
          [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      run bindings = run aggregated)

(* --- team proof scope --- *)

let test_team_history () =
  let binding =
    Perm_binding.make
      ~spatial:(Srac.Formula.Ordered (a_cfg, a_db))
      ~spatial_scope:Perm_binding.Performed
      ~proof_scope:Perm_binding.Team
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control = System.create ~bindings:[ binding ] (base_policy ()) in
  let session = session_of control in
  System.arrive control ~object_id:"worker" ~server:"s1" ~time:Q.zero;
  System.arrive control ~object_id:"scout" ~server:"s1" ~time:Q.zero;
  System.join_team control ~object_id:"worker" ~team:"t1";
  System.join_team control ~object_id:"scout" ~team:"t1";
  Alcotest.(check (list string)) "teammates" [ "scout" ]
    (System.teammates control ~object_id:"worker");
  (* the scout reads cfg; the worker's db read then passes via the
     teammate's proof *)
  let scout_session = session_of control in
  ignore
    (System.check control ~session:scout_session ~object_id:"scout"
       ~program:(prog "read cfg @ s1") ~time:(q 1) a_cfg);
  let verdict =
    System.check control ~session ~object_id:"worker"
      ~program:(prog "read db @ s1") ~time:(q 2) a_db
  in
  Alcotest.(check bool) "worker granted via teammate" true
    (Decision.is_granted verdict)

let test_own_scope_ignores_teammates () =
  let binding =
    Perm_binding.make
      ~spatial:(Srac.Formula.Ordered (a_cfg, a_db))
      ~spatial_scope:Perm_binding.Performed
      ~proof_scope:Perm_binding.Own
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control = System.create ~bindings:[ binding ] (base_policy ()) in
  let session = session_of control in
  System.arrive control ~object_id:"worker" ~server:"s1" ~time:Q.zero;
  System.arrive control ~object_id:"scout" ~server:"s1" ~time:Q.zero;
  System.join_team control ~object_id:"worker" ~team:"t1";
  System.join_team control ~object_id:"scout" ~team:"t1";
  let scout_session = session_of control in
  ignore
    (System.check control ~session:scout_session ~object_id:"scout"
       ~program:(prog "read cfg @ s1") ~time:(q 1) a_cfg);
  match
    System.check control ~session ~object_id:"worker"
      ~program:(prog "read db @ s1") ~time:(q 2) a_db
  with
  | Decision.Denied (Decision.Spatial_violation _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "own scope should deny: %a" Decision.pp_verdict v)

(* --- verdict cache invalidation (the indexed fast path must never
   serve a stale grant) --- *)

let test_cache_hit_is_taken () =
  (* program-scope binding: after a granted check the cached entry is
     present and a repeated identical check (different time) still
     matches the naive outcome *)
  let binding =
    Perm_binding.make
      ~spatial:(Srac.Formula.Ordered (a_cfg, a_db))
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read cfg @ s1; read db @ s1" in
  let check t =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "first granted" true (Decision.is_granted (check 1));
  let m = System.monitor control ~object_id:"o" in
  Alcotest.(check bool) "verdict cached" true
    (Option.is_some
       (Monitor.find_decision m ~key:(Sral.Access.to_string a_db)));
  Alcotest.(check bool) "repeat granted (cache hit)" true
    (Decision.is_granted (check 2));
  Alcotest.(check bool) "clock advanced on the hit path" true
    (Q.equal (Monitor.now m) (q 2))

let test_cache_invalidated_by_arrival () =
  (* a cached Granted must flip once record_arrival moves the object
     off the server whose per-server budget the grant was living on *)
  let binding =
    Perm_binding.make ~dur:(q 5) ~scheme:Temporal.Validity.Per_server
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1; read db @ s1" in
  let check t =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "granted on s1" true (Decision.is_granted (check 1));
  System.arrive control ~object_id:"o" ~server:"s2" ~time:(q 2);
  (* budget rebased at t=2; by t=8 it is exhausted — a stale cache
     would keep granting *)
  match check 8 with
  | Decision.Denied (Decision.Temporal_expired _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected expiry after migration, got %a"
           Decision.pp_verdict v)

let test_cache_invalidated_by_companion_history () =
  (* Team proof scope, at most 2 db reads for the whole team: the
     worker's second check is identical to its first (same access, same
     program) but a companion's grant in between changes the
     coordinated outcome *)
  let binding =
    Perm_binding.make
      ~spatial:(Srac.Formula.at_most 2 (Srac.Selector.Resource "db"))
      ~spatial_scope:Perm_binding.Performed ~proof_scope:Perm_binding.Team
      (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control = System.create ~bindings:[ binding ] (base_policy ()) in
  let worker_session = session_of control in
  let helper_session = session_of control in
  System.arrive control ~object_id:"worker" ~server:"s1" ~time:Q.zero;
  System.arrive control ~object_id:"helper" ~server:"s1" ~time:Q.zero;
  System.join_team control ~object_id:"worker" ~team:"t1";
  System.join_team control ~object_id:"helper" ~team:"t1";
  let program = prog "read db @ s1; read db @ s1" in
  let check session object_id t =
    System.check control ~session ~object_id ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "worker 1st" true
    (Decision.is_granted (check worker_session "worker" 1));
  Alcotest.(check bool) "helper consumes the team budget" true
    (Decision.is_granted (check helper_session "helper" 2));
  (* team history now holds 2 db reads; the worker's identical recheck
     would make 3 — must be denied, not served from cache *)
  match check worker_session "worker" 3 with
  | Decision.Denied (Decision.Spatial_violation _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected team-budget denial, got %a"
           Decision.pp_verdict v)

let test_cache_invalidated_by_session_change () =
  (* deactivating the role between two identical checks must flip the
     cached Granted to an RBAC denial *)
  let binding =
    Perm_binding.make (Rbac.Perm.make ~operation:"read" ~target:"db@s1")
  in
  let control, session = setup ~bindings:[ binding ] () in
  let program = prog "read db @ s1" in
  let check t =
    System.check control ~session ~object_id:"o" ~program ~time:(q t) a_db
  in
  Alcotest.(check bool) "granted while active" true
    (Decision.is_granted (check 1));
  Alcotest.(check bool) "still granted (cache hit)" true
    (Decision.is_granted (check 2));
  Rbac.Session.deactivate session "r";
  (match check 3 with
  | Decision.Denied (Decision.Rbac_denied _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected rbac denial after deactivation, got %a"
           Decision.pp_verdict v));
  (* and reactivation restores the grant *)
  Rbac.Session.activate session "r";
  Alcotest.(check bool) "granted again" true (Decision.is_granted (check 4))

(* --- binding index --- *)

let index_agrees_with_linear_scan =
  QCheck.Test.make ~name:"Binding_index.applicable = linear filter" ~count:200
    (QCheck.make (fun rng -> Random.State.int rng 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
      let operation () = pick [ "read"; "write"; "execute"; "*" ] in
      let target () =
        match Random.State.int rng 5 with
        | 0 -> "*"
        | 1 -> pick [ "db"; "cfg" ]  (* unstructured: matches nothing *)
        | _ ->
            pick [ "db"; "cfg"; "*" ] ^ "@" ^ pick [ "s1"; "s2"; "*" ]
      in
      let bindings =
        List.init
          (Random.State.int rng 12)
          (fun _ ->
            Perm_binding.make
              (Rbac.Perm.make ~operation:(operation ()) ~target:(target ())))
      in
      let index = Binding_index.of_list bindings in
      let accesses =
        List.init 6 (fun _ ->
            Sral.Generate.access ~resources:[ "db"; "cfg"; "log" ]
              ~servers:[ "s1"; "s2"; "s3" ] rng)
      in
      List.for_all
        (fun a ->
          let via_index = Binding_index.applicable index a in
          let via_scan =
            List.filter (fun b -> Perm_binding.applies_to b a) bindings
          in
          via_index = via_scan)
        accesses)

let test_index_append_and_order () =
  let b1 = Perm_binding.make (Rbac.Perm.make ~operation:"read" ~target:"*@*") in
  let b2 = Perm_binding.make ~dur:(q 5) perm_db in
  let b3 = Perm_binding.make (Rbac.Perm.make ~operation:"*" ~target:"db@s1") in
  let index = Binding_index.of_list [ b1; b2 ] in
  Alcotest.(check int) "version counts" 2 (Binding_index.version index);
  Binding_index.add index b3;
  Alcotest.(check int) "version bumps" 3 (Binding_index.version index);
  Alcotest.(check bool) "insertion order preserved" true
    (Binding_index.to_list index == [ b1; b2; b3 ]
    || Binding_index.to_list index = [ b1; b2; b3 ]);
  Alcotest.(check bool) "applicable in insertion order" true
    (Binding_index.applicable index a_db = [ b1; b2; b3 ])

(* --- audit log --- *)

let test_audit_log () =
  let log = Audit_log.create () in
  Audit_log.record log
    { Audit_log.time = q 1; object_id = "o1"; access = a_db; verdict = Decision.Granted };
  Audit_log.record log
    {
      Audit_log.time = q 2;
      object_id = "o2";
      access = a_cfg;
      verdict = Decision.Denied (Decision.Rbac_denied "no");
    };
  Alcotest.(check int) "size" 2 (Audit_log.size log);
  Alcotest.(check int) "granted" 1 (List.length (Audit_log.granted log));
  Alcotest.(check int) "denied" 1 (List.length (Audit_log.denied log));
  Alcotest.(check (float 0.01)) "rate" 0.5 (Audit_log.grant_rate log);
  Alcotest.(check int) "by object" 1
    (List.length (Audit_log.by_object log "o1"));
  Alcotest.(check int) "by server" 2
    (List.length (Audit_log.by_server log "s1"))

let random_entry rng t =
  let object_id = Printf.sprintf "o%d" (Random.State.int rng 7) in
  let access =
    Sral.Generate.access ~resources:[ "db"; "cfg" ]
      ~servers:[ "s1"; "s2"; "s3" ] rng
  in
  let verdict =
    if Random.State.bool rng then Decision.Granted
    else Decision.Denied (Decision.Rbac_denied "no")
  in
  { Audit_log.time = q t; object_id; access; verdict }

let test_audit_counters_agree_with_entries () =
  (* 10k mixed records: every O(1) counter equals the O(n)
     recomputation from the retained entries *)
  let rng = Random.State.make [| 2025; 8 |] in
  let log = Audit_log.create () in
  for t = 1 to 10_000 do
    Audit_log.record log (random_entry rng t)
  done;
  let entries = Audit_log.entries log in
  Alcotest.(check int) "size" (List.length entries) (Audit_log.size log);
  Alcotest.(check int) "retained" (List.length entries)
    (Audit_log.retained log);
  Alcotest.(check int) "granted"
    (List.length
       (List.filter
          (fun (e : Audit_log.entry) -> Decision.is_granted e.verdict)
          entries))
    (Audit_log.granted_count log);
  Alcotest.(check int) "denied"
    (List.length
       (List.filter
          (fun (e : Audit_log.entry) -> not (Decision.is_granted e.verdict))
          entries))
    (Audit_log.denied_count log);
  Alcotest.(check (float 1e-9)) "grant rate"
    (float_of_int (Audit_log.granted_count log)
    /. float_of_int (Audit_log.size log))
    (Audit_log.grant_rate log);
  List.iter
    (fun id ->
      Alcotest.(check int)
        (Printf.sprintf "count_by_object %s" id)
        (List.length (Audit_log.by_object log id))
        (Audit_log.count_by_object log id))
    (List.init 7 (Printf.sprintf "o%d"));
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "count_by_server %s" s)
        (List.length (Audit_log.by_server log s))
        (Audit_log.count_by_server log s))
    [ "s1"; "s2"; "s3" ]

let test_audit_ring_mode () =
  (* capacity 100, 250 records: the ring retains the newest 100 while
     lifetime counters keep counting the evicted ones *)
  let rng = Random.State.make [| 2025; 9 |] in
  let log = Audit_log.create ~capacity:100 () in
  let granted_lifetime = ref 0 in
  for t = 1 to 250 do
    let e = random_entry rng t in
    if Decision.is_granted e.Audit_log.verdict then incr granted_lifetime;
    Audit_log.record log e
  done;
  Alcotest.(check int) "lifetime size" 250 (Audit_log.size log);
  Alcotest.(check int) "retained capped" 100 (Audit_log.retained log);
  let entries = Audit_log.entries log in
  Alcotest.(check int) "entries = retained" 100 (List.length entries);
  (* oldest retained entry is record #151, newest is #250, in order *)
  Alcotest.(check string) "oldest survivor" "151"
    (Q.to_string (List.hd entries).Audit_log.time);
  Alcotest.(check string) "newest survivor" "250"
    (Q.to_string (List.nth entries 99).Audit_log.time);
  Alcotest.(check bool) "retained in record order" true
    (List.for_all2
       (fun (e : Audit_log.entry) t -> Q.equal e.time (q t))
       entries
       (List.init 100 (fun i -> 151 + i)));
  Alcotest.(check int) "lifetime granted exact" !granted_lifetime
    (Audit_log.granted_count log);
  Alcotest.(check int) "lifetime denied exact" (250 - !granted_lifetime)
    (Audit_log.denied_count log);
  Alcotest.(check (float 1e-9)) "lifetime grant rate"
    (float_of_int !granted_lifetime /. 250.)
    (Audit_log.grant_rate log)

let test_audit_ring_boundary () =
  (* the eviction boundary exactly: at capacity the ring is full but
     nothing has been evicted; one more record evicts exactly the
     oldest entry *)
  let capacity = 5 in
  let rng = Random.State.make [| 2025; 11 |] in
  let log = Audit_log.create ~capacity () in
  for t = 1 to capacity do
    Audit_log.record log (random_entry rng t)
  done;
  Alcotest.(check int) "at capacity: size" capacity (Audit_log.size log);
  Alcotest.(check int) "at capacity: retained" capacity (Audit_log.retained log);
  Alcotest.(check (list string)) "at capacity: nothing evicted"
    (List.init capacity (fun i -> string_of_int (i + 1)))
    (List.map
       (fun (e : Audit_log.entry) -> Q.to_string e.time)
       (Audit_log.entries log));
  Audit_log.record log (random_entry rng (capacity + 1));
  Alcotest.(check int) "capacity+1: lifetime size" (capacity + 1)
    (Audit_log.size log);
  Alcotest.(check int) "capacity+1: retained stays capped" capacity
    (Audit_log.retained log);
  Alcotest.(check (list string)) "capacity+1: exactly the oldest evicted"
    (List.init capacity (fun i -> string_of_int (i + 2)))
    (List.map
       (fun (e : Audit_log.entry) -> Q.to_string e.time)
       (Audit_log.entries log))

let test_audit_empty_log_conventions () =
  let log = Audit_log.create () in
  Alcotest.(check (float 0.0)) "empty rate is 1.0" 1.0
    (Audit_log.grant_rate log);
  Alcotest.(check int) "empty size" 0 (Audit_log.size log);
  Alcotest.(check int) "unknown object count" 0
    (Audit_log.count_by_object log "ghost");
  Alcotest.check_raises "capacity < 1 rejected"
    (Invalid_argument "Audit_log.create: capacity 0 < 1") (fun () ->
      ignore (Audit_log.create ~capacity:0 ()))

(* --- export --- *)

let test_export_csv () =
  let log = Audit_log.create () in
  Audit_log.record log
    { Audit_log.time = q 1; object_id = "o,1"; access = a_db;
      verdict = Decision.Granted };
  Audit_log.record log
    { Audit_log.time = Q.make 3 2; object_id = "o2"; access = a_cfg;
      verdict = Decision.Denied (Decision.Rbac_denied "no \"role\"") };
  let csv = Export.audit_csv log in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header"
    "time,object,operation,resource,server,verdict,reason" (List.hd lines);
  Alcotest.(check bool) "comma field quoted" true
    (String.length (List.nth lines 1) > 0
    && String.sub (List.nth lines 1) 0 4 = "1,\"o");
  Alcotest.(check bool) "rational time" true
    (String.sub (List.nth lines 2) 0 3 = "3/2")

let test_export_json_escaping () =
  Alcotest.(check string) "quotes" "a\\\"b" (Export.json_escape "a\"b");
  Alcotest.(check string) "backslash" "a\\\\b" (Export.json_escape "a\\b");
  Alcotest.(check string) "newline" "a\\nb" (Export.json_escape "a\nb");
  Alcotest.(check string) "csv quoting" "\"a\"\"b\"" (Export.csv_field "a\"b");
  Alcotest.(check string) "csv plain" "plain" (Export.csv_field "plain")

let test_export_bindings_json () =
  let bindings =
    [
      Perm_binding.make
        ~spatial:(Srac.Formula.Atom a_cfg)
        ~spatial_scope:Perm_binding.Performed
        ~proof_scope:Perm_binding.Team ~dur:(q 5)
        (Rbac.Perm.make ~operation:"read" ~target:"db@s1");
    ]
  in
  let json = Export.bindings_json bindings in
  let contains needle =
    let n = String.length needle in
    let rec scan i =
      i + n <= String.length json
      && (String.sub json i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "permission" true (contains "\"permission\":\"read:db@s1\"");
  Alcotest.(check bool) "team" true (contains "\"proofs\":\"team\"");
  Alcotest.(check bool) "dur" true (contains "\"dur\":\"5\"")

(* --- lint --- *)

let lint_policy text = Lint.check (Policy_lang.parse text)

let test_lint_clean_policy () =
  let findings =
    lint_policy
      {|
user a
role worker
assign a worker
grant worker read:db@s1
bind read:db@s1 dur 5
|}
  in
  Alcotest.(check int) "no findings" 0 (List.length findings)

let test_lint_unsatisfiable () =
  let findings =
    lint_policy
      {|
user a
role worker
assign a worker
grant worker read:db@s1
bind read:db@s1 spatial "done(read x @ s1) && false"
|}
  in
  Alcotest.(check bool) "unsatisfiable reported" true
    (List.exists
       (function Lint.Unsatisfiable_spatial _ -> true | _ -> false)
       findings)

let test_lint_dead_binding () =
  let findings =
    lint_policy
      {|
user a
role worker
assign a worker
grant worker read:db@s1
bind write:other@s9 dur 5
|}
  in
  Alcotest.(check bool) "dead binding" true
    (List.exists (function Lint.Dead_binding _ -> true | _ -> false) findings)

let test_lint_wildcard_grant_not_dead () =
  (* a wildcard grant covers concrete binding patterns *)
  let findings =
    lint_policy
      {|
user a
role worker
assign a worker
grant worker *:*@*
bind write:other@s9 dur 5
|}
  in
  Alcotest.(check bool) "not dead under wildcard" false
    (List.exists (function Lint.Dead_binding _ -> true | _ -> false) findings)

let test_lint_role_findings () =
  let findings = lint_policy {|
user a
role lonely
|} in
  Alcotest.(check bool) "no perms" true
    (List.exists
       (function Lint.Role_without_permissions "lonely" -> true | _ -> false)
       findings);
  Alcotest.(check bool) "unassigned" true
    (List.exists
       (function Lint.Role_unassigned "lonely" -> true | _ -> false)
       findings)

let test_lint_zero_duration () =
  let findings =
    lint_policy
      {|
user a
role worker
assign a worker
grant worker read:db@s1
bind read:db@s1 dur 0
|}
  in
  Alcotest.(check bool) "zero duration" true
    (List.exists (function Lint.Zero_duration _ -> true | _ -> false) findings)

(* --- timeline --- *)

let test_timeline_render () =
  let log = Audit_log.create () in
  Audit_log.record log
    { Audit_log.time = Q.zero; object_id = "a"; access = a_db; verdict = Decision.Granted };
  Audit_log.record log
    { Audit_log.time = q 10; object_id = "a"; access = a_db;
      verdict = Decision.Denied (Decision.Rbac_denied "no") };
  Audit_log.record log
    { Audit_log.time = q 5; object_id = "bb"; access = a_cfg; verdict = Decision.Granted };
  let out = Timeline.render ~width:21 log in
  let lines = String.split_on_char '
' (String.trim out) in
  Alcotest.(check int) "header + two lanes" 3 (List.length lines);
  let lane_a = List.nth lines 1 in
  Alcotest.(check bool) "grant at left edge" true (String.contains lane_a 'G');
  Alcotest.(check bool) "denial at right edge" true (String.contains lane_a 'x');
  let lane_b = List.nth lines 2 in
  Alcotest.(check bool) "b has one grant" true (String.contains lane_b 'G');
  Alcotest.(check bool) "b has no denial" false (String.contains lane_b 'x')

let test_timeline_empty () =
  Alcotest.(check string) "empty" "(no events)"
    (Timeline.render (Audit_log.create ()))

(* --- policy language --- *)

let policy_text =
  {|
# the audit coalition
user alice
role chief
role auditor
inherit chief auditor
assign alice chief
grant auditor read:db@s1
grant chief write:report@s1
ssd conflict chief external max 1
bind read:db@s1 spatial "done(read cfg @ s1) -> seq(read cfg @ s1, read db @ s1)" modality forall scope program dur 10 scheme journey
bind write:report@s1 dur 5/2 scheme server
|}

let policy_text_fixed =
  (* "ssd" above references an undeclared role: fine for Sod itself;
     also declare it to exercise parsing *)
  String.concat "\n"
    (List.filter
       (fun l -> not (String.length l >= 3 && String.sub l 0 3 = "ssd"))
       (String.split_on_char '\n' policy_text))

let test_policy_lang_parse () =
  let parsed = Policy_lang.parse policy_text_fixed in
  Alcotest.(check (list string)) "users" [ "alice" ]
    (Rbac.Policy.users parsed.Policy_lang.policy);
  Alcotest.(check (list string)) "roles" [ "auditor"; "chief" ]
    (Rbac.Policy.roles parsed.Policy_lang.policy);
  Alcotest.(check int) "bindings" 2 (List.length parsed.Policy_lang.bindings);
  let b = List.hd parsed.Policy_lang.bindings in
  Alcotest.(check bool) "spatial present" true
    (b.Perm_binding.spatial <> None);
  Alcotest.(check bool) "forall" true
    (b.Perm_binding.spatial_modality = Srac.Program_sat.Forall);
  Alcotest.(check (option string)) "dur" (Some "10")
    (Option.map Q.to_string b.Perm_binding.dur);
  let b2 = List.nth parsed.Policy_lang.bindings 1 in
  Alcotest.(check (option string)) "fractional dur" (Some "5/2")
    (Option.map Q.to_string b2.Perm_binding.dur);
  Alcotest.(check bool) "per-server" true
    (b2.Perm_binding.scheme = Temporal.Validity.Per_server)

let test_policy_lang_roundtrip () =
  let parsed = Policy_lang.parse policy_text_fixed in
  let reparsed = Policy_lang.parse (Policy_lang.render parsed) in
  Alcotest.(check int) "bindings preserved"
    (List.length parsed.Policy_lang.bindings)
    (List.length reparsed.Policy_lang.bindings);
  Alcotest.(check (list string)) "roles preserved"
    (Rbac.Policy.roles parsed.Policy_lang.policy)
    (Rbac.Policy.roles reparsed.Policy_lang.policy)

(* The render/parse fixed point, as a seeded property over full random
   deployments (hierarchy edges, SSD/DSD constraints, binding mixes):
   rendering is canonical, so one render/parse cycle must reach a
   fixed point — [render (parse (render t))] is byte-identical to
   [render t].  A failing deployment is shrunk by dropping bindings
   before being reported. *)
let test_policy_lang_render_fixed_point () =
  Gen.each_seed ~salt:5150 ~count:200 (fun ~seed rng ->
      let t = Gen.policy_lang rng in
      let rendered = Policy_lang.render t in
      let again = Policy_lang.render (Policy_lang.parse rendered) in
      if not (String.equal rendered again) then begin
        let fails bindings =
          let t = { t with Policy_lang.bindings } in
          let r = Policy_lang.render t in
          not (String.equal r (Policy_lang.render (Policy_lang.parse r)))
        in
        let small =
          if fails t.Policy_lang.bindings then
            { t with
              Policy_lang.bindings =
                Gen.shrink_list ~fails t.Policy_lang.bindings }
          else t
        in
        let r = Policy_lang.render small in
        Alcotest.failf
          "seed %d: render is not a parse fixed point@.rendered:@.%s@.@.\
           reparsed-rendered:@.%s"
          seed r
          (Policy_lang.render (Policy_lang.parse r))
      end)

(* Single bindings round-trip through the line-level entry points the
   admin-op syntax reuses. *)
let test_policy_lang_binding_roundtrip () =
  Gen.each_seed ~salt:5151 ~count:200 (fun ~seed rng ->
      let u = Gen.universe rng in
      let b = Gen.analysis_binding rng u in
      let line = Policy_lang.render_binding b in
      let b' = Policy_lang.parse_binding line in
      if not (String.equal line (Policy_lang.render_binding b')) then
        Alcotest.failf "seed %d: binding line %S does not round-trip" seed
          line)

let test_policy_lang_errors () =
  let check_error src expected_line =
    match Policy_lang.parse src with
    | exception Policy_lang.Error (line, _) ->
        Alcotest.(check int) "line number" expected_line line
    | _ -> Alcotest.fail (Printf.sprintf "%S should fail" src)
  in
  check_error "frobnicate x" 1;
  check_error "user a\nassign a ghost" 2;
  check_error "bind read:x@y dur notanumber" 1;
  check_error "bind read:x@y spatial \"%%%\"" 1;
  check_error "bind read:x@y modality maybe" 1

let test_of_policy_text_end_to_end () =
  let control = System.of_policy_text policy_text_fixed in
  let session = System.new_session control ~user:"alice" in
  Rbac.Session.activate session "chief";
  System.arrive control ~object_id:"o" ~server:"s1" ~time:Q.zero;
  (* program violates the forall constraint: reads cfg after db *)
  let bad = prog "read db @ s1; read cfg @ s1" in
  (match
     System.check control ~session ~object_id:"o" ~program:bad ~time:(q 1) a_db
   with
  | Decision.Denied (Decision.Spatial_violation _) -> ()
  | v ->
      Alcotest.fail
        (Format.asprintf "expected spatial denial: %a" Decision.pp_verdict v));
  let good = prog "read cfg @ s1; read db @ s1" in
  Alcotest.(check bool) "compliant program granted" true
    (Decision.is_granted
       (System.check control ~session ~object_id:"o" ~program:good ~time:(q 2)
          a_db))

let () =
  Alcotest.run "coordinated"
    [
      ("binding", [ Alcotest.test_case "applies_to" `Quick test_binding_applies ]);
      ( "monitor",
        [
          Alcotest.test_case "arrivals/proofs" `Quick
            test_monitor_arrivals_and_proofs;
          Alcotest.test_case "clock monotone" `Quick test_monitor_clock_monotone;
          Alcotest.test_case "activation fn" `Quick test_monitor_activation_fn;
        ] );
      ( "decision",
        [
          Alcotest.test_case "plain rbac" `Quick test_decide_plain_rbac;
          Alcotest.test_case "spatial program scope" `Quick
            test_decide_spatial_program_scope;
          Alcotest.test_case "spatial performed scope" `Quick
            test_decide_spatial_performed_scope;
          Alcotest.test_case "temporal expiry" `Quick test_decide_temporal_expiry;
          Alcotest.test_case "per-server scheme" `Quick
            test_decide_per_server_scheme;
          Alcotest.test_case "not arrived" `Quick test_decide_not_arrived;
          Alcotest.test_case "grant records proof" `Quick
            test_granted_records_proof;
          Alcotest.test_case "denial records no proof" `Quick
            test_denied_no_proof;
          Alcotest.test_case "dc cross validation" `Quick
            test_dc_cross_validation;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "classify" `Quick test_classify;
          Alcotest.test_case "min duration" `Quick test_aggregate_min_dur;
          Alcotest.test_case "conjoins history constraints" `Quick
            test_aggregate_conjoins_history_constraints;
          Alcotest.test_case "refuses exists-program" `Quick
            test_aggregate_refuses_exists_program;
          Alcotest.test_case "refuses mixed schemes" `Quick
            test_aggregate_refuses_mixed_schemes;
          Alcotest.test_case "refuses mixed proof scopes" `Quick
            test_aggregate_refuses_mixed_proof_scopes;
          QCheck_alcotest.to_alcotest aggregate_preserves_decisions;
        ] );
      ( "team",
        [
          Alcotest.test_case "team history" `Quick test_team_history;
          Alcotest.test_case "own scope" `Quick test_own_scope_ignores_teammates;
        ] );
      ( "verdict-cache",
        [
          Alcotest.test_case "hit is taken" `Quick test_cache_hit_is_taken;
          Alcotest.test_case "invalidated by arrival" `Quick
            test_cache_invalidated_by_arrival;
          Alcotest.test_case "invalidated by companion history" `Quick
            test_cache_invalidated_by_companion_history;
          Alcotest.test_case "invalidated by session change" `Quick
            test_cache_invalidated_by_session_change;
        ] );
      ( "binding-index",
        [
          QCheck_alcotest.to_alcotest index_agrees_with_linear_scan;
          Alcotest.test_case "append and order" `Quick
            test_index_append_and_order;
        ] );
      ( "audit",
        [
          Alcotest.test_case "log" `Quick test_audit_log;
          Alcotest.test_case "counters agree with entries" `Quick
            test_audit_counters_agree_with_entries;
          Alcotest.test_case "ring mode" `Quick test_audit_ring_mode;
          Alcotest.test_case "ring eviction boundary" `Quick
            test_audit_ring_boundary;
          Alcotest.test_case "empty-log conventions" `Quick
            test_audit_empty_log_conventions;
        ] );
      ( "lint",
        [
          Alcotest.test_case "clean policy" `Quick test_lint_clean_policy;
          Alcotest.test_case "unsatisfiable" `Quick test_lint_unsatisfiable;
          Alcotest.test_case "dead binding" `Quick test_lint_dead_binding;
          Alcotest.test_case "wildcard grant" `Quick
            test_lint_wildcard_grant_not_dead;
          Alcotest.test_case "role findings" `Quick test_lint_role_findings;
          Alcotest.test_case "zero duration" `Quick test_lint_zero_duration;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "render" `Quick test_timeline_render;
          Alcotest.test_case "empty" `Quick test_timeline_empty;
        ] );
      ( "export",
        [
          Alcotest.test_case "csv" `Quick test_export_csv;
          Alcotest.test_case "json escaping" `Quick test_export_json_escaping;
          Alcotest.test_case "bindings json" `Quick test_export_bindings_json;
        ] );
      ( "policy-lang",
        [
          Alcotest.test_case "parse" `Quick test_policy_lang_parse;
          Alcotest.test_case "roundtrip" `Quick test_policy_lang_roundtrip;
          Alcotest.test_case "render fixed point (seeded property)" `Quick
            test_policy_lang_render_fixed_point;
          Alcotest.test_case "binding line roundtrip" `Quick
            test_policy_lang_binding_roundtrip;
          Alcotest.test_case "errors" `Quick test_policy_lang_errors;
          Alcotest.test_case "end to end" `Quick test_of_policy_text_end_to_end;
        ] );
    ]
